// Cilk determinacy-race detection. For every spawn…sync region the
// scanner keeps the set of outstanding spawns, each carrying the
// spawned call's read/write effect sets mapped into the caller's
// alias frame (summary.go). Every access the parallel continuation
// makes — and every new sibling spawn — is intersected against the
// outstanding writes: a write/read or write/write overlap with no
// sync in between is a determinacy race (CM-RACE). Reading the target
// variable of an outstanding spawn is a separate lint
// (CM-SYNC-MISSING): the result is only stored at the sync, so the
// read observes the stale value. Fire-and-forget spawns of provably
// pure functions are dead work (CM-SPAWN-DEAD).
//
// Branches scan with copies of the outstanding set and union at the
// join; loop bodies are rescanned until the state stabilizes so
// cross-iteration races (spawn in one iteration, conflicting access
// in the next) are seen. A (spawn, symbol) dedup map shared across
// branch copies keeps each race reported once. I/O-vs-I/O overlap is
// deliberately not flagged: spawned prints interleave, but that is
// visible nondeterminism the user asked for, not a memory race.
package vet

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/source"
)

// spawnInfo is one outstanding spawn: the spawned call's effects in
// caller-frame terms.
type spawnInfo struct {
	stmt   *ast.SpawnStmt
	fname  string
	reads  aset
	writes aset
	havoc  bool
	target string // "" for fire-and-forget, cleared if reassigned
}

// raceScan is the per-function scan state threaded through the alias
// walker. snapshot/join give branch semantics; seen is shared across
// all copies so duplicates collapse.
type raceScan struct {
	c      *checker
	w      *walker
	active []*spawnInfo
	seen   map[string]bool
}

func (r *raceScan) snapshot() *raceScan {
	cp := &raceScan{c: r.c, w: r.w, seen: r.seen}
	cp.active = append([]*spawnInfo(nil), r.active...)
	return cp
}

// join unions other's outstanding spawns into r (branch join),
// reporting whether r changed.
func (r *raceScan) join(other *raceScan) bool {
	if other == nil {
		return false
	}
	have := make(map[*spawnInfo]bool, len(r.active))
	for _, sp := range r.active {
		have[sp] = true
	}
	changed := false
	for _, sp := range other.active {
		if !have[sp] {
			r.active = append(r.active, sp)
			changed = true
		}
	}
	return changed
}

func (r *raceScan) activeKey() map[*spawnInfo]bool {
	out := make(map[*spawnInfo]bool, len(r.active))
	for _, sp := range r.active {
		out[sp] = true
	}
	return out
}

func activeEqual(a, b map[*spawnInfo]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for sp := range a {
		if !b[sp] {
			return false
		}
	}
	return true
}

func (r *raceScan) sync() { r.active = r.active[:0] }

func (r *raceScan) once(sp *spawnInfo, kind, sym string) bool {
	key := fmt.Sprintf("%s|%d|%s", kind, sp.stmt.Span().Start.Offset, sym)
	if r.seen[key] {
		return false
	}
	r.seen[key] = true
	return true
}

func spawnedHere(sp *spawnInfo) []source.Related {
	s := sp.stmt.Span()
	if !s.Start.IsValid() {
		return nil
	}
	return []source.Related{{Span: s, Message: fmt.Sprintf("%q spawned here, still outstanding", sp.fname)}}
}

// access checks one continuation access against every outstanding
// spawn.
func (r *raceScan) access(n ast.Node, write bool, s aset) {
	if s.empty() {
		return
	}
	for _, sp := range r.active {
		sym, conflict := s.overlapDesc(sp.writes, r.w)
		spWrote := conflict
		if !conflict && write {
			sym, conflict = s.overlapDesc(sp.reads, r.w)
		}
		if !conflict && sp.havoc {
			sym, conflict = "shared state", true
		}
		if !conflict {
			continue
		}
		if !r.once(sp, "race", sym) {
			continue
		}
		spVerb, hereVerb := "reads", "read"
		if spWrote {
			spVerb = "writes"
		}
		if write {
			hereVerb = "written"
		}
		r.c.report(CodeRace, source.Warning, n, spawnedHere(sp),
			"determinacy race on %s: the spawned call to %q %s it, and it is %s here with no sync in between",
			sym, sp.fname, spVerb, hereVerb)
	}
}

// identRead flags reads of an outstanding spawn's target variable.
func (r *raceScan) identRead(x *ast.Ident) {
	for _, sp := range r.active {
		if sp.target != x.Name {
			continue
		}
		if r.once(sp, "sync-missing", x.Name) {
			r.c.report(CodeSyncMissing, source.Warning, x, spawnedHere(sp),
				"%q is the target of an outstanding spawn; its value is only stored at sync, so this read sees the stale pre-spawn value",
				x.Name)
		}
	}
}

// targetAssigned clears the stale-target lint when the continuation
// deliberately reassigns the target before the sync.
func (r *raceScan) targetAssigned(name string) {
	for _, sp := range r.active {
		if sp.target == name {
			sp.target = ""
		}
	}
}

// spawned registers a new outstanding spawn, first checking it
// against its already-outstanding siblings.
func (r *raceScan) spawned(s *ast.SpawnStmt, call *ast.CallExpr, sum *summary, args []aset) {
	sp := &spawnInfo{stmt: s, fname: call.Fun, target: s.Target}
	if sum != nil {
		sp.reads, sp.writes, sp.havoc = r.mapEffects(call, sum, args)
		if s.Target == "" && sum.pure() {
			r.c.report(CodeSpawnDead, source.Warning, s, nil,
				"spawned call to %q has no target and no observable effect; the spawned work is dead",
				call.Fun)
		}
	} else if isBuiltin(call.Fun) {
		sp.reads, sp.writes = builtinSpawnEffects(call, args)
	} else if _, declared := r.w.info.Funcs[call.Fun]; declared {
		sp.havoc = true
	}

	for _, old := range r.active {
		sym, conflict := sp.writes.overlapDesc(joined(old.reads, old.writes), r.w)
		if !conflict {
			sym, conflict = sp.reads.overlapDesc(old.writes, r.w)
		}
		if !conflict && (sp.havoc && !(old.reads.empty() && old.writes.empty()) ||
			old.havoc && !(sp.reads.empty() && sp.writes.empty())) {
			sym, conflict = "shared state", true
		}
		if conflict && r.once(old, "race", sym) {
			r.c.report(CodeRace, source.Warning, s, spawnedHere(old),
				"determinacy race on %s: spawned calls to %q and %q run concurrently and at least one writes it",
				sym, old.fname, call.Fun)
		}
	}
	r.active = append(r.active, sp)
}

func joined(a, b aset) aset {
	out := a.clone()
	out.union(b)
	return out
}

// mapEffects translates a callee summary into caller-frame read/write
// alias sets.
func (r *raceScan) mapEffects(call *ast.CallExpr, sum *summary, args []aset) (reads, writes aset, havoc bool) {
	sig := r.w.calleeSig(call)
	for bit := 0; bit < 64; bit++ {
		m := uint64(1) << bit
		if sum.pRead&m == 0 && sum.pWrite&m == 0 {
			continue
		}
		a, ok := r.w.calleeArg(sig, bit, args)
		if !ok {
			continue
		}
		if sum.pRead&m != 0 {
			reads.union(a)
		}
		if sum.pWrite&m != 0 {
			writes.union(a)
		}
	}
	for g := range sum.gRead {
		reads.union(aset{globals: map[string]bool{g: true}})
	}
	for g := range sum.gWrite {
		writes.union(aset{globals: map[string]bool{g: true}})
	}
	return reads, writes, sum.havoc
}

// builtinSpawnEffects models a spawned builtin: its arguments' storage
// is read (or written, for the rc mutators) concurrently.
func builtinSpawnEffects(call *ast.CallExpr, args []aset) (reads, writes aset) {
	switch call.Fun {
	case "rcset", "rcrelease":
		if len(args) > 0 {
			writes.union(args[0])
		}
		for _, a := range args[1:] {
			reads.union(a)
		}
	default:
		for _, a := range args {
			reads.union(a)
		}
	}
	return reads, writes
}

// raceCheck runs the determinacy-race scan over every function.
func raceCheck(c *checker, prog *ast.Program, sums map[string]*summary) {
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		spawns := false
		scanSpawn(fd.Body, &spawns)
		if !spawns {
			continue
		}
		w := newWalker(prog, c.info, sums)
		w.race = &raceScan{c: c, w: w, seen: map[string]bool{}}
		w.bindParams(fd)
		w.stmt(fd.Body)
	}
}
