package grammar

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/source"
)

// exprSpec builds the classic arithmetic expression grammar with
// precedence declarations, whose actions evaluate the expression.
func exprSpec() *Spec {
	num := Pat("Num", "[0-9]+", HostOwner)
	plus := LitOp("+", "+", HostOwner, 1, AssocLeft)
	minus := LitOp("-", "-", HostOwner, 1, AssocLeft)
	times := LitOp("*", "*", HostOwner, 2, AssocLeft)
	lp := Lit("(", "(", HostOwner)
	rp := Lit(")", ")", HostOwner)
	atoi := func(s string) int {
		n := 0
		for _, c := range s {
			n = n*10 + int(c-'0')
		}
		return n
	}
	return &Spec{
		Name:         HostOwner,
		Terminals:    []*Terminal{num, plus, minus, times, lp, rp},
		Nonterminals: []*Nonterminal{{Name: "E"}},
		Productions: []*Production{
			Rule(HostOwner, "E", []string{"E", "+", "E"}, func(c []any) any {
				return c[0].(int) + c[2].(int)
			}),
			Rule(HostOwner, "E", []string{"E", "-", "E"}, func(c []any) any {
				return c[0].(int) - c[2].(int)
			}),
			Rule(HostOwner, "E", []string{"E", "*", "E"}, func(c []any) any {
				return c[0].(int) * c[2].(int)
			}),
			Rule(HostOwner, "E", []string{"(", "E", ")"}, func(c []any) any {
				return c[1]
			}),
			Rule(HostOwner, "E", []string{"Num"}, func(c []any) any {
				return atoi(c[0].(Token).Text)
			}),
		},
	}
}

func tokens(kinds ...string) *SliceTokenSource {
	var ts []Token
	for _, k := range kinds {
		text := k
		if strings.HasPrefix(k, "#") { // "#123" means Num with text 123
			ts = append(ts, Token{Terminal: "Num", Text: k[1:]})
			continue
		}
		ts = append(ts, Token{Terminal: k, Text: text})
	}
	return &SliceTokenSource{Tokens: ts}
}

func mustTable(t *testing.T, start string, host *Spec, exts ...*Spec) *Table {
	t.Helper()
	g, err := New(start, host, exts...)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	tab, err := BuildTable(g)
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	return tab
}

func TestExprGrammarConflictFree(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	if len(tab.Conflicts) != 0 {
		t.Fatalf("precedence should resolve all conflicts, got: %v", tab.Conflicts)
	}
}

func parseExpr(t *testing.T, tab *Table, src *SliceTokenSource) (int, bool) {
	t.Helper()
	var d source.Diagnostics
	res, ok := tab.Parse(src, &d)
	if !ok {
		return 0, false
	}
	return res.Value.(int), true
}

func TestExprEvaluation(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	cases := []struct {
		toks []string
		want int
	}{
		{[]string{"#2", "+", "#3", "*", "#4"}, 14}, // precedence
		{[]string{"#2", "*", "#3", "+", "#4"}, 10},
		{[]string{"(", "#2", "+", "#3", ")", "*", "#4"}, 20}, // grouping
		{[]string{"#10", "-", "#3", "-", "#2"}, 5},           // left assoc
		{[]string{"#7"}, 7},
	}
	for _, c := range cases {
		got, ok := parseExpr(t, tab, tokens(c.toks...))
		if !ok {
			t.Errorf("parse %v failed", c.toks)
			continue
		}
		if got != c.want {
			t.Errorf("parse %v = %d, want %d", c.toks, got, c.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	bad := [][]string{
		{"#1", "+"},
		{"+", "#1"},
		{"(", "#1"},
		{"#1", "#2"},
		{")"},
		{},
	}
	for _, toks := range bad {
		var d source.Diagnostics
		_, ok := tab.Parse(tokens(toks...), &d)
		if ok {
			t.Errorf("parse %v should fail", toks)
		}
		if !d.HasErrors() {
			t.Errorf("parse %v should record a diagnostic", toks)
		}
	}
}

func TestErrorMessageMentionsExpected(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	var d source.Diagnostics
	tab.Parse(tokens("#1", "+", "+"), &d)
	msg := d.String()
	if !strings.Contains(msg, "unexpected") {
		t.Errorf("error message should say unexpected: %q", msg)
	}
	if !strings.Contains(msg, "Num") {
		t.Errorf("error message should list expected terminals: %q", msg)
	}
}

// Reference evaluator: random expression generator producing both the
// token stream and the expected value with standard precedence.
type genExpr struct {
	toks []string
	val  int
}

func genRandomExpr(r *rand.Rand, depth int) genExpr {
	if depth <= 0 || r.Intn(3) == 0 {
		n := r.Intn(50)
		return genExpr{[]string{fmt.Sprintf("#%d", n)}, n}
	}
	switch r.Intn(4) {
	case 0:
		a := genRandomExpr(r, depth-1)
		b := genRandomExpr(r, depth-1)
		// parenthesize both sides so the expected value is unambiguous
		toks := append([]string{"("}, a.toks...)
		toks = append(toks, ")", "+", "(")
		toks = append(toks, b.toks...)
		toks = append(toks, ")")
		return genExpr{toks, a.val + b.val}
	case 1:
		a := genRandomExpr(r, depth-1)
		b := genRandomExpr(r, depth-1)
		toks := append([]string{"("}, a.toks...)
		toks = append(toks, ")", "-", "(")
		toks = append(toks, b.toks...)
		toks = append(toks, ")")
		return genExpr{toks, a.val - b.val}
	case 2:
		a := genRandomExpr(r, depth-1)
		b := genRandomExpr(r, depth-1)
		toks := append([]string{"("}, a.toks...)
		toks = append(toks, ")", "*", "(")
		toks = append(toks, b.toks...)
		toks = append(toks, ")")
		return genExpr{toks, a.val * b.val}
	default:
		a := genRandomExpr(r, depth-1)
		toks := append([]string{"("}, a.toks...)
		toks = append(toks, ")")
		return genExpr{toks, a.val}
	}
}

// Property: randomly generated expressions parse and evaluate to the
// reference value.
func TestQuickRandomExpressions(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genRandomExpr(r, 4)
		got, ok := parseExpr(t, tab, tokens(e.toks...))
		return ok && got == e.val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Dangling else: with no precedence the default policy shifts, which
// binds the else to the nearest if — and the conflict is recorded.
func danglingIfSpec() *Spec {
	return &Spec{
		Name: HostOwner,
		Terminals: []*Terminal{
			Lit("if", "if", HostOwner), Lit("else", "else", HostOwner),
			Lit("expr", "e", HostOwner), Lit("other", "o", HostOwner),
		},
		Nonterminals: []*Nonterminal{{Name: "S"}},
		Productions: []*Production{
			Rule(HostOwner, "S", []string{"if", "expr", "S"}, func(c []any) any {
				return fmt.Sprintf("if(%v)", c[2])
			}),
			Rule(HostOwner, "S", []string{"if", "expr", "S", "else", "S"}, func(c []any) any {
				return fmt.Sprintf("ifelse(%v,%v)", c[2], c[4])
			}),
			Rule(HostOwner, "S", []string{"other"}, func(c []any) any { return "o" }),
		},
	}
}

func TestDanglingElseShiftPreference(t *testing.T) {
	tab := mustTable(t, "S", danglingIfSpec())
	if len(tab.Conflicts) == 0 {
		t.Fatal("dangling else should report a shift/reduce conflict")
	}
	if tab.Conflicts[0].Kind != "shift/reduce" {
		t.Fatalf("conflict kind = %s", tab.Conflicts[0].Kind)
	}
	var d source.Diagnostics
	res, ok := tab.Parse(tokens("if", "expr", "if", "expr", "other", "else", "other"), &d)
	if !ok {
		t.Fatalf("parse failed: %s", d.String())
	}
	// else binds to the inner if
	if res.Value != "if(ifelse(o,o))" {
		t.Errorf("dangling else resolution = %v, want if(ifelse(o,o))", res.Value)
	}
}

func TestNonassocMakesErrorEntry(t *testing.T) {
	host := exprSpec()
	// add a nonassociative comparison operator
	host.Terminals = append(host.Terminals, LitOp("<", "<", HostOwner, 0, AssocNone))
	host.Terminals[len(host.Terminals)-1].Prec = 1
	// replace + with nonassoc < in a copy grammar
	host.Productions = append(host.Productions,
		&Production{LHS: "E", RHS: []string{"E", "<", "E"}, Owner: HostOwner,
			Action: func(c []any) any {
				if c[0].(int) < c[2].(int) {
					return 1
				}
				return 0
			}})
	// '<' has prec 1 like +; make it truly nonassoc at its own level
	tab := mustTable(t, "E", host)
	var d source.Diagnostics
	_, ok := tab.Parse(tokens("#1", "<", "#2", "<", "#3"), &d)
	if ok {
		t.Error("chained nonassoc comparison should be a syntax error")
	}
	_, ok = tab.Parse(tokens("#1", "<", "#2"), &d)
	if !ok {
		t.Error("single comparison should parse")
	}
}

func TestEpsilonProductions(t *testing.T) {
	// L -> <empty> | L x   (a possibly empty list)
	s := &Spec{
		Name:         HostOwner,
		Terminals:    []*Terminal{Lit("x", "x", HostOwner)},
		Nonterminals: []*Nonterminal{{Name: "L"}},
		Productions: []*Production{
			Rule(HostOwner, "L", nil, func(c []any) any { return 0 }),
			Rule(HostOwner, "L", []string{"L", "x"}, func(c []any) any { return c[0].(int) + 1 }),
		},
	}
	tab := mustTable(t, "L", s)
	if len(tab.Conflicts) != 0 {
		t.Fatalf("list grammar conflicts: %v", tab.Conflicts)
	}
	for n := 0; n <= 5; n++ {
		var ks []string
		for i := 0; i < n; i++ {
			ks = append(ks, "x")
		}
		var d source.Diagnostics
		res, ok := tab.Parse(tokens(ks...), &d)
		if !ok || res.Value.(int) != n {
			t.Errorf("list of %d: got %v ok=%v", n, res.Value, ok)
		}
	}
}

func TestGrammarValidation(t *testing.T) {
	base := func() *Spec { return exprSpec() }

	// undeclared symbol in RHS
	s := base()
	s.Productions = append(s.Productions, Rule(HostOwner, "E", []string{"Nope"}, nil))
	if _, err := New("E", s); err == nil {
		t.Error("undeclared RHS symbol should fail validation")
	}

	// nonterminal with no productions
	s = base()
	s.Nonterminals = append(s.Nonterminals, &Nonterminal{Name: "Orphan"})
	if _, err := New("E", s); err == nil {
		t.Error("orphan nonterminal should fail validation")
	}

	// bad start symbol
	if _, err := New("Missing", base()); err == nil {
		t.Error("missing start symbol should fail validation")
	}

	// duplicate terminal across specs
	dup := &Spec{Name: "ext", Terminals: []*Terminal{Pat("Num", "[0-9]+", "ext")},
		Nonterminals: []*Nonterminal{{Name: "X", Owner: "ext"}},
		Productions:  []*Production{Rule("ext", "X", []string{"Num"}, nil)}}
	if _, err := New("E", base(), dup); err == nil {
		t.Error("duplicate terminal should fail validation")
	}

	// empty-matching terminal pattern
	s = base()
	s.Terminals = append(s.Terminals, Pat("Empty", "a*", HostOwner))
	if _, err := New("E", s); err == nil {
		t.Error("empty-matching terminal should fail validation")
	}
}

func TestValidTerminalsReflectState(t *testing.T) {
	tab := mustTable(t, "E", exprSpec())
	v0 := tab.ValidTerminals(0)
	if !v0["Num"] || !v0["("] {
		t.Errorf("state 0 should allow Num and (: %v", v0)
	}
	if v0["+"] || v0[")"] || v0[EOFName] {
		t.Errorf("state 0 should not allow +, ), eof: %v", v0)
	}
}

func TestProductionString(t *testing.T) {
	p := &Production{LHS: "E", RHS: []string{"E", "+", "E"}}
	if p.String() != "E -> E + E" {
		t.Errorf("String = %q", p.String())
	}
	e := &Production{LHS: "L"}
	if !strings.Contains(e.String(), "empty") {
		t.Errorf("empty production string = %q", e.String())
	}
}
