package grammar

import (
	"strings"
	"testing"

	"repro/internal/source"
)

// toyHost is a miniature statement/expression host language used to
// exercise the composability analysis in isolation from CMINUS.
func toyHost() *Spec {
	return &Spec{
		Name: HostOwner,
		Terminals: []*Terminal{
			Pat("Id", "[a-z]+", HostOwner),
			Pat("Num", "[0-9]+", HostOwner),
			LitOp("+", "+", HostOwner, 1, AssocLeft),
			Lit("=", "=", HostOwner),
			Lit(";", ";", HostOwner),
			Lit("(", "(", HostOwner),
			Lit(")", ")", HostOwner),
			Lit(",", ",", HostOwner),
		},
		Nonterminals: []*Nonterminal{{Name: "Stmts"}, {Name: "Stmt"}, {Name: "Expr"}, {Name: "Args"}},
		Productions: []*Production{
			Rule(HostOwner, "Stmts", []string{"Stmt"}, nil),
			Rule(HostOwner, "Stmts", []string{"Stmts", "Stmt"}, nil),
			Rule(HostOwner, "Stmt", []string{"Id", "=", "Expr", ";"}, nil),
			Rule(HostOwner, "Expr", []string{"Expr", "+", "Expr"}, nil),
			Rule(HostOwner, "Expr", []string{"Num"}, nil),
			Rule(HostOwner, "Expr", []string{"Id"}, nil),
			Rule(HostOwner, "Expr", []string{"(", "Expr", ")"}, nil),
			Rule(HostOwner, "Expr", []string{"Id", "(", "Args", ")"}, nil),
			Rule(HostOwner, "Args", []string{"Expr"}, nil),
			Rule(HostOwner, "Args", []string{"Args", ",", "Expr"}, nil),
		},
	}
}

// goodExt adds a with-loop-like construct introduced by the marker
// keyword "with": Expr -> with ( Expr , Expr ).
func goodExt() *Spec {
	return &Spec{
		Name:      "withext",
		Terminals: []*Terminal{Lit("with", "with", "withext")},
		Productions: []*Production{
			Rule("withext", "Expr", []string{"with", "(", "Expr", ",", "Expr", ")"}, nil),
		},
	}
}

// tupleExt mimics the paper's failing tuple extension: its bridge
// production starts with the host's "(" terminal.
func tupleExt() *Spec {
	return &Spec{
		Name: "tuple",
		Productions: []*Production{
			Rule("tuple", "Expr", []string{"(", "Expr", ",", "Expr", ")"}, nil),
		},
	}
}

// fixedTupleExt is the paper's suggested fix: a distinct "(|" marker.
func fixedTupleExt() *Spec {
	return &Spec{
		Name: "tuplefixed",
		Terminals: []*Terminal{
			Lit("(|", "(|", "tuplefixed"),
			Lit("|)", "|)", "tuplefixed"),
		},
		Productions: []*Production{
			Rule("tuplefixed", "Expr", []string{"(|", "Expr", ",", "Expr", "|)"}, nil),
		},
	}
}

// secondExt is an independently developed extension with its own marker.
func secondExt() *Spec {
	return &Spec{
		Name:      "foreach",
		Terminals: []*Terminal{Lit("foreach", "foreach", "foreach"), Lit("in", "in", "foreach")},
		Productions: []*Production{
			Rule("foreach", "Stmt", []string{"foreach", "Id", "in", "Expr", ";"}, nil),
		},
	}
}

func TestIsComposableAcceptsMarkedExtension(t *testing.T) {
	r := IsComposable("Stmts", toyHost(), goodExt())
	if !r.Passed {
		t.Fatalf("with-extension should pass: %s", r)
	}
	if len(r.Markers) != 1 || r.Markers[0] != "with" {
		t.Errorf("markers = %v, want [with]", r.Markers)
	}
}

func TestIsComposableRejectsTupleExtension(t *testing.T) {
	r := IsComposable("Stmts", toyHost(), tupleExt())
	if r.Passed {
		t.Fatal("tuple extension with host '(' initial terminal must fail, as in the paper")
	}
	found := false
	for _, f := range r.Failures {
		if strings.Contains(f, "marker terminal") {
			found = true
		}
	}
	if !found {
		t.Errorf("failure should cite the marker-terminal condition: %v", r.Failures)
	}
}

func TestIsComposableAcceptsFixedTuple(t *testing.T) {
	r := IsComposable("Stmts", toyHost(), fixedTupleExt())
	if !r.Passed {
		t.Fatalf("fixed tuple extension should pass: %s", r)
	}
}

func TestComposeAllTheorem(t *testing.T) {
	// Individually passing extensions must compose conflict-free.
	exts := []*Spec{goodExt(), fixedTupleExt(), secondExt()}
	for _, e := range exts {
		r := IsComposable("Stmts", toyHost(), e)
		if !r.Passed {
			t.Fatalf("precondition: %s should pass alone: %s", e.Name, r)
		}
	}
	g, tab, err := ComposeAll("Stmts", toyHost(), exts...)
	if err != nil {
		t.Fatalf("composition theorem violated: %v", err)
	}
	if len(tab.Conflicts) != 0 {
		t.Fatalf("composed table has conflicts: %v", tab.Conflicts)
	}
	if len(g.Owners()) != 4 {
		t.Errorf("owners = %v", g.Owners())
	}
}

func TestComposedParserParsesAllExtensions(t *testing.T) {
	_, tab, err := ComposeAll("Stmts", toyHost(), goodExt(), fixedTupleExt(), secondExt())
	if err != nil {
		t.Fatal(err)
	}
	programs := [][]Token{
		// x = with ( 1 , 2 ) ;
		{{Terminal: "Id", Text: "x"}, {Terminal: "="}, {Terminal: "with"}, {Terminal: "("},
			{Terminal: "Num", Text: "1"}, {Terminal: ","}, {Terminal: "Num", Text: "2"},
			{Terminal: ")"}, {Terminal: ";"}},
		// y = (| a , b |) ;
		{{Terminal: "Id", Text: "y"}, {Terminal: "="}, {Terminal: "(|"},
			{Terminal: "Id", Text: "a"}, {Terminal: ","}, {Terminal: "Id", Text: "b"},
			{Terminal: "|)"}, {Terminal: ";"}},
		// foreach i in xs ;
		{{Terminal: "foreach"}, {Terminal: "Id", Text: "i"}, {Terminal: "in"},
			{Terminal: "Id", Text: "xs"}, {Terminal: ";"}},
	}
	for i, p := range programs {
		var d source.Diagnostics
		_, ok := tab.Parse(&SliceTokenSource{Tokens: p}, &d)
		if !ok {
			t.Errorf("program %d failed to parse: %s", i, d.String())
		}
	}
}

// An extension that breaks determinism (ambiguous with host) must fail
// condition 1 even though it has a marker.
func TestIsComposableRejectsAmbiguousExtension(t *testing.T) {
	amb := &Spec{
		Name:      "amb",
		Terminals: []*Terminal{Lit("amb", "amb", "amb")},
		Productions: []*Production{
			// Two identical bridge productions = reduce/reduce conflict.
			Rule("amb", "Expr", []string{"amb", "Expr"}, nil),
			Rule("amb", "Expr", []string{"amb", "Expr"}, nil),
		},
	}
	r := IsComposable("Stmts", toyHost(), amb)
	if r.Passed {
		t.Fatal("ambiguous extension must fail the analysis")
	}
}

// Spillage: an extension whose construct embeds Expr followed by a host
// terminal in a new position produces benign reduce-spillage, which is
// recorded but allowed.
func TestSpillageRecordedNotFatal(t *testing.T) {
	spill := &Spec{
		Name:      "spill",
		Terminals: []*Terminal{Lit("retry", "retry", "spill")},
		Productions: []*Production{
			// Stmt -> retry Expr = Expr ; — reuses the host '=' after an
			// Expr, a follow context the host grammar never creates, so
			// host expression states gain reduce actions on '='.
			Rule("spill", "Stmt", []string{"retry", "Expr", "=", "Expr", ";"}, nil),
		},
	}
	r := IsComposable("Stmts", toyHost(), spill)
	if !r.Passed {
		t.Fatalf("spillage-only extension should pass: %s", r)
	}
	if len(r.Spillage) == 0 {
		t.Error("expected recorded spillage for ';' in new follow contexts")
	}
}

func TestComposeReportString(t *testing.T) {
	r := IsComposable("Stmts", toyHost(), tupleExt())
	s := r.String()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "tuple") {
		t.Errorf("report string = %q", s)
	}
	r2 := IsComposable("Stmts", toyHost(), goodExt())
	if !strings.Contains(r2.String(), "PASS") {
		t.Errorf("report string = %q", r2.String())
	}
}
