// Package grammar implements context-free grammar specifications,
// grammar composition, LALR(1) parse-table construction, a table-driven
// parser, and the modular determinism ("isComposable") analysis from
// Schwerdfeger & Van Wyk that underpins the paper's guarantee that
// independently developed language extensions compose into a working
// deterministic parser.
//
// A Grammar is assembled from a host specification plus any number of
// extension specifications; terminals and productions carry an Owner tag
// identifying which extension contributed them ("" is the host).
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rx"
	"repro/internal/source"
)

// Assoc is operator associativity used for conflict resolution.
type Assoc int

// Associativity values.
const (
	AssocNone Assoc = iota
	AssocLeft
	AssocRight
)

// HostOwner is the owner tag for host-language symbols and productions.
const HostOwner = ""

// Terminal is a lexical terminal symbol.
type Terminal struct {
	Name     string
	Pattern  *rx.NFA
	Owner    string // extension that declared it; "" = host
	Priority int    // scanner tie-break: higher wins at equal match length
	Skip     bool   // whitespace/comment terminals: matched, never shifted
	Prec     int    // operator precedence (0 = none)
	Assoc    Assoc
}

// Nonterminal is a syntactic category.
type Nonterminal struct {
	Name  string
	Owner string
}

// Production is one grammar rule LHS -> RHS with a semantic action.
// The action receives one value per RHS symbol: a Token for terminals
// and the child production's action result for nonterminals.
type Production struct {
	Name   string // optional label, for diagnostics and debugging
	LHS    string
	RHS    []string
	Owner  string
	Action func(children []any) any
	// PrecTerm optionally names a terminal whose precedence this
	// production uses for shift/reduce resolution (like yacc %prec).
	PrecTerm string
}

// String renders the production like "Expr -> Expr '+' Expr".
func (p *Production) String() string {
	if len(p.RHS) == 0 {
		return p.LHS + " -> <empty>"
	}
	return p.LHS + " -> " + strings.Join(p.RHS, " ")
}

// Spec is a composable grammar fragment: the host language is a Spec
// and each language extension is a Spec.
type Spec struct {
	Name         string // owner tag; "" for host
	Terminals    []*Terminal
	Nonterminals []*Nonterminal
	Productions  []*Production
}

// Grammar is a composed grammar ready for table construction.
type Grammar struct {
	Start string

	terms   map[string]*Terminal
	nts     map[string]*Nonterminal
	prods   []*Production
	byLHS   map[string][]int // production indices
	specs   []string         // owner names in composition order
	ordered []string         // terminal names in declaration order
}

// EOFName is the reserved end-of-input terminal.
const EOFName = "$eof"

// New creates a grammar with the given start nonterminal from the host
// spec composed with the given extension specs. Symbol clashes across
// specs are reported as errors (same-name terminals with different
// patterns, duplicate nonterminal ownership is permitted — extensions
// may add productions to host nonterminals, which is the whole point).
func New(start string, host *Spec, exts ...*Spec) (*Grammar, error) {
	g := &Grammar{
		Start: start,
		terms: map[string]*Terminal{},
		nts:   map[string]*Nonterminal{},
		byLHS: map[string][]int{},
	}
	g.terms[EOFName] = &Terminal{Name: EOFName, Owner: HostOwner}
	all := append([]*Spec{host}, exts...)
	for _, s := range all {
		g.specs = append(g.specs, s.Name)
		for _, t := range s.Terminals {
			if t.Name == EOFName {
				return nil, fmt.Errorf("grammar: terminal name %s is reserved", EOFName)
			}
			if prev, ok := g.terms[t.Name]; ok {
				return nil, fmt.Errorf("grammar: terminal %q declared by both %q and %q",
					t.Name, ownerLabel(prev.Owner), ownerLabel(t.Owner))
			}
			if t.Pattern != nil && t.Pattern.AcceptsEmpty() {
				return nil, fmt.Errorf("grammar: terminal %q pattern accepts the empty string", t.Name)
			}
			g.terms[t.Name] = t
			g.ordered = append(g.ordered, t.Name)
		}
		for _, nt := range s.Nonterminals {
			if _, ok := g.nts[nt.Name]; !ok {
				g.nts[nt.Name] = nt
			}
		}
		for _, p := range s.Productions {
			g.prods = append(g.prods, p)
		}
	}
	for i, p := range g.prods {
		g.byLHS[p.LHS] = append(g.byLHS[p.LHS], i)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func ownerLabel(owner string) string {
	if owner == HostOwner {
		return "host"
	}
	return owner
}

func (g *Grammar) validate() error {
	if _, ok := g.nts[g.Start]; !ok {
		return fmt.Errorf("grammar: start symbol %q is not a declared nonterminal", g.Start)
	}
	for _, p := range g.prods {
		if _, ok := g.nts[p.LHS]; !ok {
			return fmt.Errorf("grammar: production %q has undeclared LHS %q", p, p.LHS)
		}
		for _, s := range p.RHS {
			if !g.IsTerminal(s) && !g.IsNonterminal(s) {
				return fmt.Errorf("grammar: production %q uses undeclared symbol %q", p, s)
			}
			if s == EOFName {
				return fmt.Errorf("grammar: production %q uses reserved terminal %s", p, EOFName)
			}
		}
		if p.PrecTerm != "" {
			if _, ok := g.terms[p.PrecTerm]; !ok {
				return fmt.Errorf("grammar: production %q names undeclared precedence terminal %q", p, p.PrecTerm)
			}
		}
	}
	for name := range g.nts {
		if len(g.byLHS[name]) == 0 {
			return fmt.Errorf("grammar: nonterminal %q has no productions", name)
		}
	}
	// Every non-skip terminal needs a pattern to be scannable.
	for name, t := range g.terms {
		if name != EOFName && t.Pattern == nil {
			return fmt.Errorf("grammar: terminal %q has no pattern", name)
		}
	}
	return nil
}

// IsTerminal reports whether name is a declared terminal.
func (g *Grammar) IsTerminal(name string) bool { _, ok := g.terms[name]; return ok }

// IsNonterminal reports whether name is a declared nonterminal.
func (g *Grammar) IsNonterminal(name string) bool { _, ok := g.nts[name]; return ok }

// Terminal returns the named terminal, or nil.
func (g *Grammar) Terminal(name string) *Terminal { return g.terms[name] }

// Terminals returns all terminals in declaration order (skips included,
// $eof excluded).
func (g *Grammar) Terminals() []*Terminal {
	out := make([]*Terminal, 0, len(g.ordered))
	for _, n := range g.ordered {
		out = append(out, g.terms[n])
	}
	return out
}

// Productions returns the production list in composition order.
func (g *Grammar) Productions() []*Production { return g.prods }

// ProductionsFor returns the productions with the given LHS.
func (g *Grammar) ProductionsFor(lhs string) []*Production {
	var out []*Production
	for _, i := range g.byLHS[lhs] {
		out = append(out, g.prods[i])
	}
	return out
}

// Owners returns the owner tags composed into this grammar, host first.
func (g *Grammar) Owners() []string { return g.specs }

// prodPrec returns the effective precedence/associativity of a
// production: the explicit PrecTerm if set, else the last terminal of
// the RHS (classic yacc rule).
func (g *Grammar) prodPrec(p *Production) (int, Assoc) {
	name := p.PrecTerm
	if name == "" {
		for i := len(p.RHS) - 1; i >= 0; i-- {
			if g.IsTerminal(p.RHS[i]) {
				name = p.RHS[i]
				break
			}
		}
	}
	if name == "" {
		return 0, AssocNone
	}
	t := g.terms[name]
	return t.Prec, t.Assoc
}

// Token is one scanned token delivered to the parser.
type Token struct {
	Terminal string
	Text     string
	Span     source.Span
}

func (t Token) String() string {
	if t.Text == "" || t.Text == t.Terminal {
		return t.Terminal
	}
	return fmt.Sprintf("%s(%q)", t.Terminal, t.Text)
}

// TokenSource is the scanner interface the parser drives. The parser
// passes the set of terminal names that are valid in its current state;
// a context-aware scanner restricts matching to that set (plus skips).
type TokenSource interface {
	NextToken(valid map[string]bool) (Token, error)
}

// SliceTokenSource adapts a pre-scanned token slice to TokenSource,
// ignoring the valid set. Used in tests.
type SliceTokenSource struct {
	Tokens []Token
	pos    int
}

// NextToken returns the next token, or an $eof token when exhausted.
func (s *SliceTokenSource) NextToken(valid map[string]bool) (Token, error) {
	if s.pos >= len(s.Tokens) {
		return Token{Terminal: EOFName}, nil
	}
	t := s.Tokens[s.pos]
	s.pos++
	return t, nil
}

// Lit is a convenience constructor for a fixed-spelling terminal
// (keyword or operator). Priority 1 makes keywords win ties against
// identifier-class terminals (priority 0) under maximal munch.
func Lit(name, spelling, owner string) *Terminal {
	return &Terminal{Name: name, Pattern: rx.Literal(spelling), Owner: owner, Priority: 1}
}

// LitOp is Lit plus operator precedence and associativity.
func LitOp(name, spelling, owner string, prec int, assoc Assoc) *Terminal {
	t := Lit(name, spelling, owner)
	t.Prec = prec
	t.Assoc = assoc
	return t
}

// Pat is a convenience constructor for a pattern terminal.
func Pat(name, pattern, owner string) *Terminal {
	return &Terminal{Name: name, Pattern: rx.MustCompile(pattern), Owner: owner}
}

// Rule is a convenience constructor for a production.
func Rule(owner, lhs string, rhs []string, action func([]any) any) *Production {
	return &Production{LHS: lhs, RHS: rhs, Owner: owner, Action: action}
}

// Describe returns a human-readable grammar summary, used by
// cmd/composecheck and in debugging.
func (g *Grammar) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start: %s\n", g.Start)
	fmt.Fprintf(&b, "terminals: %d, nonterminals: %d, productions: %d\n",
		len(g.terms)-1, len(g.nts), len(g.prods))
	names := make([]string, 0, len(g.nts))
	for n := range g.nts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, i := range g.byLHS[n] {
			fmt.Fprintf(&b, "  %s\n", g.prods[i])
		}
	}
	return b.String()
}
