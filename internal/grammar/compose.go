// The modular determinism analysis ("isComposable") of §VI-A of the
// paper, after Schwerdfeger & Van Wyk (PLDI'09). An extension passes
// the analysis when, checked in isolation against the host grammar:
//
//  1. host ∪ extension is LALR(1) (conflict-free), and
//  2. every "bridge" production (an extension production whose LHS is a
//     host nonterminal) begins with a *marker terminal* owned by the
//     extension — the unique initial terminal the paper describes
//     (this is the condition the tuple extension fails, since its
//     initial terminal is the host's "("), and
//  3. the composed automaton preserves the host automaton: on states
//     reachable by host-symbol paths, actions on host terminals are
//     unchanged except for benign "follow spillage" — added *reduce*
//     actions of host productions caused by new follow contexts.
//
// If every selected extension passes, the composition of the host with
// all of them is LALR(1); ComposeAll verifies the theorem's conclusion
// by construction. Conditions 2 and 3 are a mildly conservative
// rendering of the original analysis (which phrases 3 via follow sets
// and an IL-subset partition of the LR DFA); they accept the paper's
// matrix and transform extensions and reject its tuple extension for
// the paper's stated reason.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// ComposeReport is the result of running the analysis on one extension.
type ComposeReport struct {
	Extension string
	Passed    bool
	Failures  []string
	Spillage  []string // benign host-terminal action additions, recorded
	Markers   []string // marker terminals found on bridge productions
}

func (r ComposeReport) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "extension %q: %s", r.Extension, status)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  fail: %s", f)
	}
	if len(r.Markers) > 0 {
		fmt.Fprintf(&b, "\n  markers: %s", strings.Join(r.Markers, ", "))
	}
	for _, s := range r.Spillage {
		fmt.Fprintf(&b, "\n  spillage: %s", s)
	}
	return b.String()
}

// IsComposable runs the modular determinism analysis for ext against
// host with the given start symbol.
func IsComposable(start string, host *Spec, ext *Spec) ComposeReport {
	r := ComposeReport{Extension: ext.Name}

	hostG, err := New(start, host)
	if err != nil {
		r.Failures = append(r.Failures, fmt.Sprintf("host grammar invalid: %v", err))
		return r
	}
	hostT, err := BuildTable(hostG)
	if err != nil || len(hostT.Conflicts) > 0 {
		r.Failures = append(r.Failures, fmt.Sprintf("host grammar is not LALR(1): %v conflicts", len(hostT.Conflicts)))
		return r
	}

	bothG, err := New(start, host, ext)
	if err != nil {
		r.Failures = append(r.Failures, fmt.Sprintf("host ∪ %s invalid: %v", ext.Name, err))
		return r
	}
	bothT, err := BuildTable(bothG)
	if err != nil {
		r.Failures = append(r.Failures, fmt.Sprintf("host ∪ %s table construction failed: %v", ext.Name, err))
		return r
	}
	if len(bothT.Conflicts) > 0 {
		for _, c := range bothT.Conflicts {
			r.Failures = append(r.Failures, fmt.Sprintf("host ∪ %s is not LALR(1): %s [state kernel: %s]",
				ext.Name, c, bothT.StateKernelString(c.State)))
		}
		return r
	}

	// Condition 2: marker terminals on bridge productions.
	hostNT := map[string]bool{}
	for _, nt := range host.Nonterminals {
		hostNT[nt.Name] = true
	}
	extTerm := map[string]bool{}
	for _, t := range ext.Terminals {
		extTerm[t.Name] = true
	}
	markerSet := map[string]bool{}
	for _, p := range ext.Productions {
		if !hostNT[p.LHS] {
			continue // internal extension production, unconstrained
		}
		if len(p.RHS) == 0 {
			r.Failures = append(r.Failures,
				fmt.Sprintf("bridge production %q is empty; extensions must introduce syntax via a marker terminal", p))
			continue
		}
		first := p.RHS[0]
		if !extTerm[first] {
			r.Failures = append(r.Failures,
				fmt.Sprintf("bridge production %q does not begin with an extension-owned marker terminal (initial symbol %q belongs to the host)", p, first))
			continue
		}
		markerSet[first] = true
	}
	for m := range markerSet {
		r.Markers = append(r.Markers, m)
	}
	sort.Strings(r.Markers)

	// Condition 3: host-state preservation with benign spillage.
	spill, violations := comparePreservation(hostT, bothT, extTerm)
	r.Spillage = spill
	r.Failures = append(r.Failures, violations...)

	r.Passed = len(r.Failures) == 0
	return r
}

// comparePreservation walks the host and composed automatons in
// lockstep along host-symbol transitions and compares action rows.
func comparePreservation(hostT, bothT *Table, extTerm map[string]bool) (spillage, violations []string) {
	type pair struct{ h, b int32 }
	seen := map[pair]bool{{0, 0}: true}
	queue := []pair{{0, 0}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		hRow := hostT.ActionRow(int(p.h))
		bRow := bothT.ActionRow(int(p.b))
		// All host actions must be preserved with corresponding targets.
		for term, hAct := range hRow {
			bAct, ok := bRow[term]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("host state %d action on %s lost in composition", p.h, term))
				continue
			}
			hk, hv := decode(hAct)
			bk, bv := decode(bAct)
			if hk != bk {
				violations = append(violations,
					fmt.Sprintf("host state %d action on %s changed kind in composition", p.h, term))
				continue
			}
			switch hk {
			case actReduce:
				if hostT.c.src[hv] != bothT.c.src[bv] {
					violations = append(violations,
						fmt.Sprintf("host state %d reduce on %s reduces a different production in composition", p.h, term))
				}
			case actShift:
				np := pair{hv, bv}
				if !seen[np] {
					seen[np] = true
					queue = append(queue, np)
				}
			}
		}
		// Additions on host terminals must be benign spillage:
		// reduce actions of host-owned productions.
		for term, bAct := range bRow {
			if _, ok := hRow[term]; ok {
				continue
			}
			if extTerm[term] {
				continue // additions on extension terminals: the point of extending
			}
			bk, bv := decode(bAct)
			if bk == actReduce {
				prod := bothT.c.src[bv]
				if prod != nil && prod.Owner == HostOwner {
					spillage = append(spillage,
						fmt.Sprintf("host state %d gains reduce(%s) on host terminal %s from new follow context", p.h, prod, term))
					continue
				}
			}
			what := "action"
			if bk == actShift {
				what = "shift"
			} else if bk == actReduce {
				what = fmt.Sprintf("reduce(%s)", bothT.c.src[bv])
			}
			violations = append(violations,
				fmt.Sprintf("host state %d gains non-benign %s on host terminal %s", p.h, what, term))
		}
		// Follow host nonterminal gotos too.
		for nt, hTo := range hostT.gotoByName(int(p.h)) {
			if bTo, ok := bothT.gotoByName(int(p.b))[nt]; ok {
				np := pair{hTo, bTo}
				if !seen[np] {
					seen[np] = true
					queue = append(queue, np)
				}
			} else {
				violations = append(violations,
					fmt.Sprintf("host state %d goto on %s lost in composition", p.h, nt))
			}
		}
	}
	sort.Strings(spillage)
	sort.Strings(violations)
	return dedup(spillage), dedup(violations)
}

func dedup(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// gotoByName returns the nonterminal-name -> target-state map of a state.
func (t *Table) gotoByName(state int) map[string]int32 {
	out := map[string]int32{}
	for nid, to := range t.gotoTab[state] {
		if to >= 0 {
			out[t.c.ntNames[nid]] = to
		}
	}
	return out
}

// ComposeAll verifies the composition theorem's conclusion: given a
// host and extensions that individually passed IsComposable, the n-ary
// composition must be conflict-free LALR(1). It returns the composed
// grammar and table, or an error if (contrary to the guarantee) a
// conflict appears.
func ComposeAll(start string, host *Spec, exts ...*Spec) (*Grammar, *Table, error) {
	g, err := New(start, host, exts...)
	if err != nil {
		return nil, nil, err
	}
	t, err := BuildTable(g)
	if err != nil {
		return nil, nil, err
	}
	if len(t.Conflicts) > 0 {
		var b strings.Builder
		for _, c := range t.Conflicts {
			fmt.Fprintf(&b, "%s\n", c)
		}
		return g, t, fmt.Errorf("composition of %d extension(s) is not LALR(1):\n%s", len(exts), b.String())
	}
	return g, t, nil
}
