// Table-driven LALR parser. The driver pulls tokens from a TokenSource,
// passing it the set of terminals valid in the current state — this is
// the hook the context-aware scanner (internal/lexer) uses to
// disambiguate overlapping terminals, exactly as in Copper.
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/source"
)

// ParseResult carries the semantic value of the start symbol.
type ParseResult struct {
	Value any
	Span  source.Span
}

// Parse runs the LALR automaton over src. Syntax errors are recorded in
// diags; on error the returned ok is false.
func (t *Table) Parse(src TokenSource, diags *source.Diagnostics) (ParseResult, bool) {
	type frame struct {
		state int32
		value any
		span  source.Span
	}
	stack := []frame{{state: 0}}
	var tok Token
	var haveTok bool

	fetch := func() bool {
		state := stack[len(stack)-1].state
		var err error
		tok, err = src.NextToken(t.valid[state])
		if err != nil {
			diags.Errorf(tok.Span, "scan error: %v", err)
			return false
		}
		haveTok = true
		return true
	}

	for {
		if !haveTok {
			if !fetch() {
				return ParseResult{}, false
			}
		}
		state := stack[len(stack)-1].state
		tid, ok := t.c.termID[tok.Terminal]
		if !ok {
			diags.Errorf(tok.Span, "unknown terminal %q from scanner", tok.Terminal)
			return ParseResult{}, false
		}
		kind, val := decode(t.action[state][tid])
		switch kind {
		case actShift:
			stack = append(stack, frame{state: val, value: tok, span: tok.Span})
			haveTok = false
		case actReduce:
			prod := t.c.src[val]
			n := len(t.c.prods[val])
			children := make([]any, n)
			var span source.Span
			for i := 0; i < n; i++ {
				f := stack[len(stack)-n+i]
				children[i] = f.value
				if i == 0 {
					span = f.span
				} else if f.span.End.Offset > span.End.Offset {
					span.End = f.span.End
				}
			}
			if n == 0 {
				// empty production: span is the upcoming token position
				span = source.Span{File: tok.Span.File, Start: tok.Span.Start, End: tok.Span.Start}
			}
			stack = stack[:len(stack)-n]
			top := stack[len(stack)-1].state
			nt := t.c.lhs[val]
			next := t.gotoTab[top][nt]
			if next < 0 {
				diags.Errorf(span, "internal parser error: no goto for %s", t.c.ntNames[nt])
				return ParseResult{}, false
			}
			var value any
			if prod.Action != nil {
				value = prod.Action(children)
			} else if n == 1 {
				value = children[0] // default: pass through single child
			}
			if ss, ok := value.(interface{ SetSpan(source.Span) }); ok {
				ss.SetSpan(span)
			}
			stack = append(stack, frame{state: next, value: value, span: span})
		case actAccept:
			// Stack: [start-frame, Start-symbol frame]
			f := stack[len(stack)-1]
			return ParseResult{Value: f.value, Span: f.span}, true
		default:
			t.reportSyntaxError(tok, state, diags)
			return ParseResult{}, false
		}
	}
}

func (t *Table) reportSyntaxError(tok Token, state int32, diags *source.Diagnostics) {
	var expected []string
	for name := range t.valid[state] {
		expected = append(expected, name)
	}
	sort.Strings(expected)
	if len(expected) > 8 {
		expected = append(expected[:8], "...")
	}
	what := tok.Terminal
	if tok.Terminal == EOFName {
		what = "end of input"
	} else if tok.Text != "" {
		what = fmt.Sprintf("%q", tok.Text)
	}
	diags.Errorf(tok.Span, "syntax error: unexpected %s; expected one of: %s",
		what, strings.Join(expected, ", "))
}
