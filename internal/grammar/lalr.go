// LALR(1) parse-table construction. The algorithm is the classic
// efficient one (Dragon Book Alg. 4.62/4.63): build the LR(0)
// collection, then compute LALR lookaheads for kernel items by
// spontaneous generation and propagation, then fill ACTION/GOTO with
// precedence-based conflict resolution.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// symRef identifies a grammar symbol in compiled (integer) form.
type symRef struct {
	term bool
	id   int32
}

// compiled grammar: integer-indexed symbols and productions.
type compiled struct {
	g         *Grammar
	termNames []string // id -> name; id 0 is $eof
	ntNames   []string // id -> name
	termID    map[string]int32
	ntID      map[string]int32
	// prods[0] is the augmented start production S' -> Start.
	prods [][]symRef // RHS of each production
	lhs   []int32    // LHS nt id of each production
	src   []*Production
	byLHS [][]int32 // nt id -> production ids

	first    [][]bool // nt id -> terminal-id set
	nullable []bool
}

// item is an LR(0) item: production id and dot position.
type item struct {
	prod int32
	dot  int32
}

func (c *compiled) itemString(it item) string {
	var b strings.Builder
	if it.prod == 0 {
		b.WriteString("$start -> ")
	} else {
		b.WriteString(c.ntNames[c.lhs[it.prod]] + " -> ")
	}
	for i, s := range c.prods[it.prod] {
		if int32(i) == it.dot {
			b.WriteString(". ")
		}
		if s.term {
			b.WriteString(c.termNames[s.id])
		} else {
			b.WriteString(c.ntNames[s.id])
		}
		b.WriteByte(' ')
	}
	if it.dot == int32(len(c.prods[it.prod])) {
		b.WriteString(".")
	}
	return strings.TrimSpace(b.String())
}

func compile(g *Grammar) *compiled {
	c := &compiled{g: g, termID: map[string]int32{}, ntID: map[string]int32{}}
	c.termNames = append(c.termNames, EOFName)
	c.termID[EOFName] = 0
	// Deterministic ordering: declaration order for terminals,
	// sorted for nonterminals.
	for _, t := range g.Terminals() {
		if t.Skip {
			continue // skip terminals never reach the parser
		}
		c.termID[t.Name] = int32(len(c.termNames))
		c.termNames = append(c.termNames, t.Name)
	}
	ntNames := make([]string, 0, len(g.nts))
	for n := range g.nts {
		ntNames = append(ntNames, n)
	}
	sort.Strings(ntNames)
	for _, n := range ntNames {
		c.ntID[n] = int32(len(c.ntNames))
		c.ntNames = append(c.ntNames, n)
	}
	// Production 0: S' -> Start.
	c.prods = append(c.prods, []symRef{{term: false, id: c.ntID[g.Start]}})
	c.lhs = append(c.lhs, -1)
	c.src = append(c.src, nil)
	for _, p := range g.prods {
		rhs := make([]symRef, len(p.RHS))
		for i, s := range p.RHS {
			if id, ok := c.termID[s]; ok {
				rhs[i] = symRef{term: true, id: id}
			} else {
				rhs[i] = symRef{term: false, id: c.ntID[s]}
			}
		}
		c.prods = append(c.prods, rhs)
		c.lhs = append(c.lhs, c.ntID[p.LHS])
		c.src = append(c.src, p)
	}
	c.byLHS = make([][]int32, len(c.ntNames))
	for pi := 1; pi < len(c.prods); pi++ {
		l := c.lhs[pi]
		c.byLHS[l] = append(c.byLHS[l], int32(pi))
	}
	c.computeFirst()
	return c
}

func (c *compiled) computeFirst() {
	n := len(c.ntNames)
	c.first = make([][]bool, n)
	for i := range c.first {
		c.first[i] = make([]bool, len(c.termNames))
	}
	c.nullable = make([]bool, n)
	for changed := true; changed; {
		changed = false
		for pi := 1; pi < len(c.prods); pi++ {
			l := c.lhs[pi]
			allNullable := true
			for _, s := range c.prods[pi] {
				if s.term {
					if !c.first[l][s.id] {
						c.first[l][s.id] = true
						changed = true
					}
					allNullable = false
					break
				}
				for t, ok := range c.first[s.id] {
					if ok && !c.first[l][t] {
						c.first[l][t] = true
						changed = true
					}
				}
				if !c.nullable[s.id] {
					allNullable = false
					break
				}
			}
			if allNullable && !c.nullable[l] {
				c.nullable[l] = true
				changed = true
			}
		}
	}
}

// firstOfSeq computes FIRST(rest · la) where rest is a symbol sequence
// and la is a terminal id (or dummyLA). Result is written into out;
// returns true if the whole sequence is nullable (so la is included).
func (c *compiled) firstOfSeq(rest []symRef, la int32, add func(int32)) {
	for _, s := range rest {
		if s.term {
			add(s.id)
			return
		}
		for t, ok := range c.first[s.id] {
			if ok {
				add(int32(t))
			}
		}
		if !c.nullable[s.id] {
			return
		}
	}
	add(la)
}

// lr0State is one state of the LR(0) automaton: its kernel items
// (sorted) and transitions.
type lr0State struct {
	kernel []item
	trans  map[symRef]int32 // symbol -> target state
}

func kernelKey(items []item) string {
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%d.%d;", it.prod, it.dot)
	}
	return b.String()
}

// closure0 returns all items derivable from the kernel by LR(0) closure.
func (c *compiled) closure0(kernel []item) []item {
	seen := map[item]bool{}
	var out []item
	var stack []item
	for _, it := range kernel {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			stack = append(stack, it)
		}
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rhs := c.prods[it.prod]
		if int(it.dot) >= len(rhs) || rhs[it.dot].term {
			continue
		}
		for _, pi := range c.byLHS[rhs[it.dot].id] {
			ni := item{prod: pi, dot: 0}
			if !seen[ni] {
				seen[ni] = true
				out = append(out, ni)
				stack = append(stack, ni)
			}
		}
	}
	return out
}

// buildLR0 constructs the canonical LR(0) collection.
func (c *compiled) buildLR0() []*lr0State {
	start := []item{{prod: 0, dot: 0}}
	states := []*lr0State{{kernel: start, trans: map[symRef]int32{}}}
	index := map[string]int32{kernelKey(start): 0}
	for si := 0; si < len(states); si++ {
		full := c.closure0(states[si].kernel)
		// group items by the symbol after the dot
		next := map[symRef][]item{}
		var symsInOrder []symRef
		for _, it := range full {
			rhs := c.prods[it.prod]
			if int(it.dot) >= len(rhs) {
				continue
			}
			s := rhs[it.dot]
			if _, ok := next[s]; !ok {
				symsInOrder = append(symsInOrder, s)
			}
			next[s] = append(next[s], item{prod: it.prod, dot: it.dot + 1})
		}
		// deterministic order
		sort.Slice(symsInOrder, func(i, j int) bool {
			a, b := symsInOrder[i], symsInOrder[j]
			if a.term != b.term {
				return a.term
			}
			return a.id < b.id
		})
		for _, s := range symsInOrder {
			kern := next[s]
			sort.Slice(kern, func(i, j int) bool {
				if kern[i].prod != kern[j].prod {
					return kern[i].prod < kern[j].prod
				}
				return kern[i].dot < kern[j].dot
			})
			key := kernelKey(kern)
			ti, ok := index[key]
			if !ok {
				ti = int32(len(states))
				index[key] = ti
				states = append(states, &lr0State{kernel: kern, trans: map[symRef]int32{}})
			}
			states[si].trans[s] = ti
		}
	}
	return states
}

const dummyLA int32 = -1

// lr1Item pairs an LR(0) item with one lookahead terminal.
type lr1Item struct {
	item
	la int32
}

// closure1 computes the LR(1) closure of the given items.
func (c *compiled) closure1(seed []lr1Item) []lr1Item {
	seen := map[lr1Item]bool{}
	var out, stack []lr1Item
	for _, it := range seed {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			stack = append(stack, it)
		}
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rhs := c.prods[it.prod]
		if int(it.dot) >= len(rhs) || rhs[it.dot].term {
			continue
		}
		rest := rhs[it.dot+1:]
		var las []int32
		c.firstOfSeq(rest, it.la, func(t int32) { las = append(las, t) })
		for _, pi := range c.byLHS[rhs[it.dot].id] {
			for _, la := range las {
				ni := lr1Item{item{pi, 0}, la}
				if !seen[ni] {
					seen[ni] = true
					out = append(out, ni)
					stack = append(stack, ni)
				}
			}
		}
	}
	return out
}

// Action kinds.
const (
	actErr = iota
	actShift
	actReduce
	actAccept
)

func encShift(s int32) int32  { return s<<2 | actShift }
func encReduce(p int32) int32 { return p<<2 | actReduce }

const encAccept int32 = actAccept

func decode(a int32) (kind int, val int32) { return int(a & 3), a >> 2 }

// Conflict records an LALR table conflict (after precedence resolution
// failed to decide, or decided by default policy).
type Conflict struct {
	State    int
	Terminal string
	Kind     string // "shift/reduce" or "reduce/reduce"
	Detail   string
	Resolved string // how the default policy resolved it
}

func (c Conflict) String() string {
	return fmt.Sprintf("state %d on %s: %s conflict (%s) resolved as %s",
		c.State, c.Terminal, c.Kind, c.Detail, c.Resolved)
}

// Table is a constructed LALR(1) parse table.
type Table struct {
	c         *compiled
	states    []*lr0State
	action    [][]int32 // [state][terminal id]
	gotoTab   [][]int32 // [state][nt id], -1 = none
	Conflicts []Conflict
	valid     []map[string]bool // per-state valid terminal names (for the scanner)
	// lookaheads of each kernel item per state; kept for the
	// composability analysis.
	kernelLA [][]map[int32]bool
}

// NumStates returns the number of LALR states.
func (t *Table) NumStates() int { return len(t.states) }

// Grammar returns the grammar the table was built from.
func (t *Table) Grammar() *Grammar { return t.c.g }

// BuildTable constructs the LALR(1) table for g. Conflicts that are not
// resolved by declared precedence are resolved by the default policy
// (shift wins shift/reduce; earlier production wins reduce/reduce) and
// recorded in Table.Conflicts — callers decide whether to accept them.
func BuildTable(g *Grammar) (*Table, error) {
	c := compile(g)
	states := c.buildLR0()

	// --- LALR lookahead computation (spontaneous + propagation) ---
	// kernel lookahead sets, and propagation links between kernel items.
	la := make([][]map[int32]bool, len(states))
	type slot struct {
		state int32
		ki    int // kernel item index
	}
	kernelIndex := make([]map[item]int, len(states))
	for si, st := range states {
		la[si] = make([]map[int32]bool, len(st.kernel))
		kernelIndex[si] = map[item]int{}
		for ki, it := range st.kernel {
			la[si][ki] = map[int32]bool{}
			kernelIndex[si][it] = ki
		}
	}
	la[0][0][0] = true // $eof for the start item
	links := map[slot][]slot{}
	for si, st := range states {
		for ki, kit := range st.kernel {
			j := c.closure1([]lr1Item{{kit, dummyLA}})
			for _, it := range j {
				rhs := c.prods[it.prod]
				if int(it.dot) >= len(rhs) {
					continue
				}
				s := rhs[it.dot]
				ti := st.trans[s]
				target := item{it.prod, it.dot + 1}
				tki := kernelIndex[ti][target]
				if it.la == dummyLA {
					from := slot{int32(si), ki}
					links[from] = append(links[from], slot{ti, tki})
				} else {
					la[ti][tki][it.la] = true
				}
			}
		}
	}
	// Propagate to fixpoint.
	for changed := true; changed; {
		changed = false
		for from, tos := range links {
			src := la[from.state][from.ki]
			for _, to := range tos {
				dst := la[to.state][to.ki]
				for t := range src {
					if !dst[t] {
						dst[t] = true
						changed = true
					}
				}
			}
		}
	}

	// --- Fill ACTION/GOTO ---
	t := &Table{c: c, states: states, kernelLA: la}
	t.action = make([][]int32, len(states))
	t.gotoTab = make([][]int32, len(states))
	t.valid = make([]map[string]bool, len(states))
	for si := range states {
		t.action[si] = make([]int32, len(c.termNames))
		t.gotoTab[si] = make([]int32, len(c.ntNames))
		for i := range t.gotoTab[si] {
			t.gotoTab[si][i] = -1
		}
	}
	for si, st := range states {
		for s, ti := range st.trans {
			if s.term {
				t.action[si][s.id] = encShift(ti)
			} else {
				t.gotoTab[si][s.id] = ti
			}
		}
	}
	for si, st := range states {
		// LR(1) closure of the kernel with computed lookaheads gives
		// reduce lookaheads for all items, including epsilon productions.
		var seed []lr1Item
		for ki, kit := range st.kernel {
			for l := range la[si][ki] {
				seed = append(seed, lr1Item{kit, l})
			}
		}
		full := c.closure1(seed)
		for _, it := range full {
			if int(it.dot) != len(c.prods[it.prod]) {
				continue
			}
			if it.prod == 0 {
				if it.la == 0 {
					t.setAction(si, 0, encAccept)
				}
				continue
			}
			t.setAction(si, it.la, encReduce(it.prod))
		}
	}
	// valid terminal sets for the context-aware scanner.
	for si := range states {
		v := map[string]bool{}
		for tid, a := range t.action[si] {
			if a != actErr {
				v[c.termNames[tid]] = true
			}
		}
		t.valid[si] = v
	}
	return t, nil
}

// setAction installs an action, resolving conflicts by precedence and
// recording unresolved ones.
func (t *Table) setAction(state int, term int32, act int32) {
	cur := t.action[state][term]
	if cur == actErr || cur == act {
		t.action[state][term] = act
		return
	}
	ck, cv := decode(cur)
	nk, nv := decode(act)
	termName := t.c.termNames[term]
	// Normalize: shift in s, reduce in r.
	if ck == actShift && nk == actReduce {
		t.resolveSR(state, term, termName, cv, nv)
		return
	}
	if ck == actReduce && nk == actShift {
		t.resolveSR(state, term, termName, nv, cv)
		return
	}
	if ck == actReduce && nk == actReduce {
		keep, drop := cv, nv
		if nv < cv {
			keep, drop = nv, cv
		}
		t.action[state][term] = encReduce(keep)
		t.Conflicts = append(t.Conflicts, Conflict{
			State: state, Terminal: termName, Kind: "reduce/reduce",
			Detail:   fmt.Sprintf("%s vs %s", t.c.src[keep], t.c.src[drop]),
			Resolved: fmt.Sprintf("reduce %s (earlier production)", t.c.src[keep]),
		})
		return
	}
	// accept conflicts should be impossible with the augmented grammar
	t.Conflicts = append(t.Conflicts, Conflict{
		State: state, Terminal: termName, Kind: "other",
		Detail: fmt.Sprintf("action %d vs %d", cur, act), Resolved: "kept first",
	})
}

func (t *Table) resolveSR(state int, term int32, termName string, shiftTo, redProd int32) {
	tm := t.c.g.terms[termName]
	pPrec, pAssoc := t.c.g.prodPrec(t.c.src[redProd])
	switch {
	case tm.Prec > 0 && pPrec > 0 && tm.Prec > pPrec:
		t.action[state][term] = encShift(shiftTo)
	case tm.Prec > 0 && pPrec > 0 && tm.Prec < pPrec:
		t.action[state][term] = encReduce(redProd)
	case tm.Prec > 0 && pPrec > 0: // equal precedence: associativity
		switch pAssoc {
		case AssocLeft:
			t.action[state][term] = encReduce(redProd)
		case AssocRight:
			t.action[state][term] = encShift(shiftTo)
		default:
			t.action[state][term] = actErr // nonassoc: error entry
		}
	default:
		// No precedence information: default shift, record conflict.
		t.action[state][term] = encShift(shiftTo)
		t.Conflicts = append(t.Conflicts, Conflict{
			State: state, Terminal: termName, Kind: "shift/reduce",
			Detail:   fmt.Sprintf("shift vs reduce %s", t.c.src[redProd]),
			Resolved: "shift (default)",
		})
	}
}

// ValidTerminals returns the terminal names with a defined action in
// the given state — the set the context-aware scanner may match.
func (t *Table) ValidTerminals(state int) map[string]bool { return t.valid[state] }

// ActionRow returns a copy of the (terminal name -> encoded action)
// row for a state; used by the composability analysis.
func (t *Table) ActionRow(state int) map[string]int32 {
	out := map[string]int32{}
	for tid, a := range t.action[state] {
		if a != actErr {
			out[t.c.termNames[tid]] = a
		}
	}
	return out
}

// StateKernelString renders a state's kernel items; for diagnostics.
func (t *Table) StateKernelString(state int) string {
	var b strings.Builder
	for _, it := range t.states[state].kernel {
		b.WriteString(t.c.itemString(it))
		b.WriteString("; ")
	}
	return strings.TrimSuffix(b.String(), "; ")
}
