// Native Go fuzz targets for the frontend. The contract under test is
// the service's first line of defense: for ARBITRARY input the scanner
// and parser return diagnostics — they never panic, hang, or return
// the (nil program, no error) combination that would let garbage flow
// into later stages. Seeds come from the real programs in testdata/
// and examples/ plus a handful of adversarial fragments aimed at the
// scanner's maximal-munch loop and the parser's error recovery.
//
// CI runs a short coverage-guided pass per target
// (go test -fuzz=FuzzLex -fuzztime=10s, same for FuzzParse); the
// checked-in seeds always run as part of the normal test suite.
package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lexer"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// addSeeds feeds every file under testdata/ and examples/ to the
// corpus: the .xc programs exercise the happy paths, and the Go hosts
// of the embedded examples are realistic almost-but-not-CMINUS input.
func addSeeds(f *testing.F) {
	f.Helper()
	for _, dir := range []string{"../../testdata", "../../examples"} {
		filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if raw, err := os.ReadFile(path); err == nil {
				f.Add(string(raw))
			}
			return nil
		})
	}
	for _, s := range []string{
		"",
		"int main() { return 0; }",
		"int main() { Matrix float <2> m; m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1.0); return 0; }",
		"with with with",
		"/* unterminated",
		"\"unterminated string",
		"int main() { return 0 0; }",
		"int main() { transform { split i by 4, a, b; } for (i = 0; i < 4; i = i + 1) ; }",
		"spawn sync spawn",
		"(|1, 2|)",
		"\x00\xff\xfe",
		"int x = 1e999999;",
		"Matrix Matrix Matrix",
	} {
		f.Add(s)
	}
}

// FuzzLex drives the context-free scan (every terminal valid, the
// scanner's worst case) over arbitrary bytes: any outcome is fine
// except a panic or a scan that neither advances nor errors.
func FuzzLex(f *testing.F) {
	addSeeds(f)
	tab, err := parser.BuildTable(parser.AllExtensions())
	if err != nil {
		f.Fatal(err)
	}
	g := tab.Grammar()
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexer.New(g, source.NewFile("fuzz.xc", src)).ScanAll()
		if err == nil {
			// A clean scan must have consumed real text: token spans are
			// within bounds and non-empty.
			for _, tok := range toks {
				if tok.Text == "" {
					t.Fatalf("empty token %q scanned from %q", tok.Terminal, src)
				}
			}
		}
	})
}

// FuzzParse drives the full frontend (parse + semantic check): for any
// input it must either produce a program or report diagnostics, and
// must never panic.
func FuzzParse(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		var diags source.Diagnostics
		prog := parser.ParseFile("fuzz.xc", src, parser.AllExtensions(), &diags)
		if prog == nil {
			if !diags.HasErrors() {
				t.Fatalf("parse of %q failed without diagnostics", src)
			}
			return
		}
		// The checker must also hold the no-panic contract on whatever
		// tree error recovery produced.
		sem.Check(prog, &diags)
	})
}
