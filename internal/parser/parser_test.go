package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/grammar"
	"repro/internal/source"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	var d source.Diagnostics
	p := ParseFile("test.xc", src, AllExtensions(), &d)
	if p == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	return p
}

func TestComposedGrammarConflictFree(t *testing.T) {
	for _, o := range []Options{{}, {Matrix: true}, {Matrix: true, Transform: true}, AllExtensions()} {
		tab, err := BuildTable(o)
		if err != nil {
			t.Fatalf("options %+v: %v", o, err)
		}
		if n := len(tab.Conflicts); n != 0 {
			t.Errorf("options %+v: %d conflicts, first: %s", o, n, tab.Conflicts[0])
		}
	}
}

// Fig 1: the temporal-mean program, the paper's recurring example.
const fig1Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`

func TestParseFig1TemporalMean(t *testing.T) {
	p := mustParse(t, fig1Src)
	if len(p.Decls) != 1 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	fn := p.Decls[0].(*ast.FuncDecl)
	if fn.Name != "main" {
		t.Fatalf("func name = %s", fn.Name)
	}
	// Find the with-loop assignment.
	var w *ast.WithLoop
	for _, s := range fn.Body.Stmts {
		if a, ok := s.(*ast.AssignStmt); ok {
			if wl, ok := a.RHS.(*ast.WithLoop); ok {
				w = wl
			}
		}
	}
	if w == nil {
		t.Fatal("no with-loop found")
	}
	if len(w.Ids) != 2 || w.Ids[0] != "i" || w.Ids[1] != "j" {
		t.Errorf("with ids = %v", w.Ids)
	}
	ga, ok := w.Op.(*ast.GenArrayOp)
	if !ok {
		t.Fatalf("outer op = %T", w.Op)
	}
	// body is (inner fold-with / p)
	div, ok := ga.Body.(*ast.BinaryExpr)
	if !ok || div.Op != ast.OpDiv {
		t.Fatalf("genarray body = %s", ast.ExprString(ga.Body))
	}
	inner, ok := div.L.(*ast.WithLoop)
	if !ok {
		t.Fatalf("inner = %T", div.L)
	}
	fo, ok := inner.Op.(*ast.FoldOp)
	if !ok || fo.Kind != ast.FoldAdd {
		t.Fatalf("inner op = %v", inner.Op)
	}
	idx, ok := fo.Body.(*ast.IndexExpr)
	if !ok || len(idx.Args) != 3 {
		t.Fatalf("fold body = %s", ast.ExprString(fo.Body))
	}
}

// Fig 9: explicit transformations on the temporal-mean with-loops.
const fig9Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p)
		transform
			split j by 4, jin, jout.
			vectorize jin.
			parallelize i;
	return 0;
}
`

func TestParseFig9Transforms(t *testing.T) {
	p := mustParse(t, fig9Src)
	fn := p.Decls[0].(*ast.FuncDecl)
	var w *ast.WithLoop
	for _, s := range fn.Body.Stmts {
		if a, ok := s.(*ast.AssignStmt); ok {
			if wl, ok := a.RHS.(*ast.WithLoop); ok {
				w = wl
			}
		}
	}
	if w == nil {
		t.Fatal("no with-loop")
	}
	if len(w.Transforms) != 3 {
		t.Fatalf("transforms = %d, want 3", len(w.Transforms))
	}
	sp, ok := w.Transforms[0].(*ast.SplitClause)
	if !ok || sp.Index != "j" || sp.Inner != "jin" || sp.Outer != "jout" {
		t.Errorf("split clause = %v", ast.TransformString(w.Transforms[0]))
	}
	if v, ok := w.Transforms[1].(*ast.VectorizeClause); !ok || v.Index != "jin" {
		t.Errorf("vectorize clause = %v", ast.TransformString(w.Transforms[1]))
	}
	if pz, ok := w.Transforms[2].(*ast.ParallelizeClause); !ok || pz.Index != "i" {
		t.Errorf("parallelize clause = %v", ast.TransformString(w.Transforms[2]))
	}
}

// Fig 8 (abridged): tuples, ranges with ::, end, matrixMap over dim 2.
const fig8Src = `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
	float y1 = areaOfInterest[0];
	float y2 = areaOfInterest[end];
	int x1 = 0;
	int x2 = dimSize(areaOfInterest, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - areaOfInterest[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	while (ts[i] < ts[i + 1])
		i = i + 1;
	int n = dimSize(ts, 0);
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}

int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

func TestParseFig8EddyScoring(t *testing.T) {
	p := mustParse(t, fig8Src)
	if len(p.Decls) != 4 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	gt := p.Decls[0].(*ast.FuncDecl)
	tt, ok := gt.Ret.(*ast.TupleType)
	if !ok || len(tt.Elems) != 3 {
		t.Fatalf("getTrough return type = %s", ast.TypeString(gt.Ret))
	}
	// return (ts[beginning::i], beginning, i) is a TupleExpr
	last := gt.Body.Stmts[len(gt.Body.Stmts)-1].(*ast.ReturnStmt)
	tup, ok := last.Value.(*ast.TupleExpr)
	if !ok || len(tup.Elems) != 3 {
		t.Fatalf("return value = %s", ast.ExprString(last.Value))
	}
	// scoreTS contains a destructuring assignment and an indexed store.
	sc := p.Decls[2].(*ast.FuncDecl)
	found := 0
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, x := range s.Stmts {
				walk(x)
			}
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.AssignStmt:
			if len(s.LHS) == 3 {
				found++
			}
			if len(s.LHS) == 1 {
				if _, ok := s.LHS[0].(*ast.IndexExpr); ok {
					found++
				}
			}
		}
	}
	walk(sc.Body)
	if found < 2 {
		t.Errorf("expected destructuring assign and indexed store in scoreTS, found %d", found)
	}
	// main has the matrixMap over dim 2.
	mm := p.Decls[3].(*ast.FuncDecl)
	var m *ast.MatrixMap
	for _, s := range mm.Body.Stmts {
		if a, ok := s.(*ast.AssignStmt); ok {
			if x, ok := a.RHS.(*ast.MatrixMap); ok {
				m = x
			}
		}
	}
	if m == nil || m.Fun != "scoreTS" || len(m.Dims) != 1 {
		t.Fatalf("matrixMap = %v", m)
	}
}

// Fig 4 style: logical indexing, whole-dimension ':', matrix compare.
const fig4Src = `
Matrix int <2> connComp(Matrix float <2> ssh) {
	Matrix int <2> labels = init(Matrix int <2>, 721, 1440);
	for (int i = -100; i < 100; i++) {
		Matrix bool <2> binary = ssh < i;
	}
	return labels;
}

int main() {
	Matrix float <3> ssh = readMatrix("ssh.data");
	Matrix int <1> dates = readMatrix("dates.data");
	ssh = ssh[:, :, dates >= 20000101];
	Matrix int <3> labels = matrixMap(connComp, ssh, [0, 1]);
	writeMatrix("eddyLabels.data", labels);
	return 0;
}
`

func TestParseFig4ConnComp(t *testing.T) {
	p := mustParse(t, fig4Src)
	main := p.Decls[1].(*ast.FuncDecl)
	// ssh = ssh[:, :, dates >= 20000101];
	var idx *ast.IndexExpr
	for _, s := range main.Body.Stmts {
		if a, ok := s.(*ast.AssignStmt); ok {
			if x, ok := a.RHS.(*ast.IndexExpr); ok {
				idx = x
			}
		}
	}
	if idx == nil || len(idx.Args) != 3 {
		t.Fatal("logical-index assignment not found")
	}
	if _, ok := idx.Args[0].(*ast.IdxAll); !ok {
		t.Errorf("arg0 = %T, want IdxAll", idx.Args[0])
	}
	if _, ok := idx.Args[1].(*ast.IdxAll); !ok {
		t.Errorf("arg1 = %T, want IdxAll", idx.Args[1])
	}
	sc, ok := idx.Args[2].(*ast.IdxScalar)
	if !ok {
		t.Fatalf("arg2 = %T, want IdxScalar(mask expr)", idx.Args[2])
	}
	if be, ok := sc.X.(*ast.BinaryExpr); !ok || be.Op != ast.OpGe {
		t.Errorf("mask expr = %s", ast.ExprString(sc.X))
	}
}

func TestParseMisc(t *testing.T) {
	srcs := []string{
		// extension keyword spellings usable as host identifiers where
		// the keyword is not grammatically valid (context-aware scanning)
		`int main() { int by = 2; int split = by + 1; return split; }`,
		// refcount extension
		`int main() { refcounted int * p = rcnew(41); rcset(p, rcget(p) + 1); return rcget(p); }`,
		// matrix arithmetic incl elementwise .* vs matmul *
		`int main() {
			Matrix float <2> a = init(Matrix float <2>, 4, 4);
			Matrix float <2> b = a .* a + a * a - a / 2.0;
			Matrix bool <2> c = a == b;
			return 0;
		}`,
		// ranges with end arithmetic (paper §III-A.3(b))
		`int main() {
			Matrix float <3> d = readMatrix("x");
			Matrix float <3> e = d[0:4, end - 4 : end, 0:4];
			return 0;
		}`,
		// dangling else binds to nearest if
		`int main() { if (true) if (false) return 1; else return 2; return 3; }`,
		// tile and unroll transform clauses
		`int main() {
			Matrix float <2> a = init(Matrix float <2>, 8, 8);
			Matrix float <2> r;
			r = with ([0,0] <= [x,y] < [8,8]) genarray([8,8], a[x,y] * 2.0)
				transform tile x by 4, y by 4. unroll y by 2;
			return 0;
		}`,
		// global variables
		`int g = 42; float h; int main() { return g; }`,
		// void function, break/continue
		`void f() { for (;;) { break; } } int main() { f(); return 0; }`,
	}
	for i, src := range srcs {
		var d source.Diagnostics
		if p := ParseFile("t.xc", src, AllExtensions(), &d); p == nil {
			t.Errorf("program %d failed:\n%s", i, d.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int main() { return 0 }`,                                  // missing ;
		`int main() { x = ; }`,                                     // missing rhs
		`int main() { with ([0] <= [1] < [2]) genarray([1], 0); }`, // ids must be identifiers
		`int main( { return 0; }`,                                  // bad params
		`int main() { a[; }`,                                       // bad index
	}
	for i, src := range bad {
		var d source.Diagnostics
		if p := ParseFile("t.xc", src, AllExtensions(), &d); p != nil {
			t.Errorf("program %d should fail to parse", i)
		}
		if !d.HasErrors() {
			t.Errorf("program %d should record diagnostics", i)
		}
	}
}

func TestSpansArePopulated(t *testing.T) {
	p := mustParse(t, fig1Src)
	fn := p.Decls[0].(*ast.FuncDecl)
	if !fn.Span().Start.IsValid() {
		t.Error("function has no span")
	}
	if fn.Body.Stmts[0].Span().Start.Line != 3 {
		t.Errorf("first stmt line = %d, want 3", fn.Body.Stmts[0].Span().Start.Line)
	}
}

func TestStandaloneTupleSpecsForAnalysis(t *testing.T) {
	// The standalone tuple extension fails the modular determinism
	// analysis (host "(" initial terminal), the fixed one passes —
	// reproducing the paper's §VI-A discussion on the real grammars.
	r := grammar.IsComposable(StartSymbol, HostSpecCore(), TupleSpec())
	if r.Passed {
		t.Error("standalone tuple extension must fail the analysis")
	}
	r2 := grammar.IsComposable(StartSymbol, HostSpecCore(), TupleFixedSpec())
	if !r2.Passed {
		t.Errorf("fixed tuple extension should pass: %s", r2)
	}
}

func TestMatrixExtensionPassesAnalysis(t *testing.T) {
	r := grammar.IsComposable(StartSymbol, HostSpec(), MatrixSpec())
	if !r.Passed {
		t.Fatalf("matrix extension must pass the analysis, as in the paper: %s", r)
	}
	if len(r.Markers) == 0 || !strings.Contains(strings.Join(r.Markers, " "), "with") {
		t.Errorf("markers = %v", r.Markers)
	}
}

func TestTransformExtensionPassesAnalysis(t *testing.T) {
	// The transform extension extends the matrix extension, so its
	// "host" for the analysis is CMINUS ∪ matrix.
	merged := HostSpec()
	m := MatrixSpec()
	merged.Terminals = append(merged.Terminals, m.Terminals...)
	merged.Nonterminals = append(merged.Nonterminals, m.Nonterminals...)
	merged.Productions = append(merged.Productions, m.Productions...)
	// Re-tag the matrix parts as host for this analysis run.
	for _, t2 := range m.Terminals {
		t2.Owner = grammar.HostOwner
	}
	for _, p := range m.Productions {
		p.Owner = grammar.HostOwner
	}
	r := grammar.IsComposable(StartSymbol, merged, TransformSpec())
	if !r.Passed {
		t.Fatalf("transform extension must pass the analysis: %s", r)
	}
}

func TestRcExtensionPassesAnalysis(t *testing.T) {
	r := grammar.IsComposable(StartSymbol, HostSpec(), RcSpec())
	if !r.Passed {
		t.Fatalf("rc extension must pass the analysis: %s", r)
	}
}
