// The matrix extension's concrete syntax (§III-A). All of its new
// syntax is introduced by marker keywords — Matrix, with, matrixMap,
// init — which is why it passes the modular determinism analysis
// (§VI-A). Matrix arithmetic and indexing reuse host operator syntax
// with extended semantics, as the paper's extension does.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/grammar"
)

// MatrixSpec builds the matrix extension grammar fragment.
func MatrixSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerMatrix)

	for _, kw := range []string{"Matrix", "with", "genarray", "fold",
		"matrixMap", "matrixMapG", "init", "min", "max"} {
		b.term(grammar.Lit(kw, kw, OwnerMatrix))
	}

	b.nts("WithOp", "FoldTok", "WithSuffix", "IdList")

	// Matrix type: Matrix (int|bool|float) <rank>
	b.rule("Type", "Matrix PrimT < IntLit >", func(c []any) any {
		rank, _ := strconv.Atoi(tk(c[3]).Text)
		return &ast.MatrixType{Elem: prim(c[1]), Rank: rank}
	})

	// With-loop (Fig 2): with ([l...] <= [ids...] < [u...]) Operation
	b.rule("Expr", "with ( [ ExprList ] <= [ IdList ] < [ ExprList ] ) WithOp WithSuffix",
		func(c []any) any {
			return &ast.WithLoop{
				Lower:      exprs(c[3]),
				Ids:        idents(c[7]),
				Upper:      exprs(c[11]),
				Op:         c[14].(ast.WithOp),
				Transforms: c[15].([]ast.TransformClause),
			}
		})
	b.rule("IdList", "Identifier", func(c []any) any { return []string{tk(c[0]).Text} })
	b.rule("IdList", "IdList , Identifier", func(c []any) any {
		return append(idents(c[0]), tk(c[2]).Text)
	})

	b.rule("WithOp", "genarray ( [ ExprList ] , Expr )", func(c []any) any {
		return &ast.GenArrayOp{Shape: exprs(c[3]), Body: ex(c[6])}
	})
	b.rule("WithOp", "fold ( FoldTok , Expr , Expr )", func(c []any) any {
		return &ast.FoldOp{Kind: c[2].(ast.FoldKind), Init: ex(c[4]), Body: ex(c[6])}
	})
	b.rule("FoldTok", "+", func(c []any) any { return ast.FoldAdd })
	b.rule("FoldTok", "*", func(c []any) any { return ast.FoldMul })
	b.rule("FoldTok", "min", func(c []any) any { return ast.FoldMin })
	b.rule("FoldTok", "max", func(c []any) any { return ast.FoldMax })

	// The transform extension hangs its clause list off WithSuffix.
	b.rule("WithSuffix", "", func(c []any) any { return []ast.TransformClause{} })

	// matrixMap(f, m, [dims...]) (§III-A.5)
	b.rule("Expr", "matrixMap ( Identifier , Expr , [ ExprList ] )", func(c []any) any {
		return &ast.MatrixMap{Fun: tk(c[2]).Text, Arg: ex(c[4]), Dims: exprs(c[7])}
	})
	// matrixMapG: the generalization without the same-size restriction
	// (§III-A.5's "being developed", implemented here).
	b.rule("Expr", "matrixMapG ( Identifier , Expr , [ ExprList ] )", func(c []any) any {
		return &ast.MatrixMap{Fun: tk(c[2]).Text, Arg: ex(c[4]), Dims: exprs(c[7]), General: true}
	})

	// init(Matrix T <r>, d0, d1, ...)
	b.rule("Expr", "init ( Type , ExprList )", func(c []any) any {
		mt, _ := ty(c[2]).(*ast.MatrixType) // nil if not a matrix type; sem reports it
		return &ast.InitExpr{Type: mt, Dims: exprs(c[4])}
	})

	return b.spec
}

// TransformSpec builds the explicit program transformation extension
// (§V, Fig 9). Its syntax attaches to the matrix extension's
// WithSuffix nonterminal behind the "transform" marker, so for the
// modular determinism analysis its host is CMINUS ∪ matrix.
func TransformSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerTransform)

	for _, kw := range []string{"transform", "split", "by", "vectorize",
		"parallelize", "reorder", "tile", "unroll"} {
		b.term(grammar.Lit(kw, kw, OwnerTransform))
	}
	b.term(grammar.Lit(".", ".", OwnerTransform))

	b.nts("ClauseList", "Clause")

	b.rule("WithSuffix", "transform ClauseList", func(c []any) any { return c[1] })
	b.rule("ClauseList", "Clause", func(c []any) any {
		return []ast.TransformClause{c[0].(ast.TransformClause)}
	})
	b.rule("ClauseList", "ClauseList . Clause", func(c []any) any {
		return append(c[0].([]ast.TransformClause), c[2].(ast.TransformClause))
	})

	// Transformation factors are integer literals (as in the paper's
	// "split j by 4"); a general expression there would be ambiguous
	// with the surrounding expression grammar.
	b.rule("Clause", "split Identifier by IntLit , Identifier , Identifier", func(c []any) any {
		return &ast.SplitClause{Index: tk(c[1]).Text, Factor: intLitOf(tk(c[3])),
			Inner: tk(c[5]).Text, Outer: tk(c[7]).Text}
	})
	b.rule("Clause", "vectorize Identifier", func(c []any) any {
		return &ast.VectorizeClause{Index: tk(c[1]).Text}
	})
	b.rule("Clause", "parallelize Identifier", func(c []any) any {
		return &ast.ParallelizeClause{Index: tk(c[1]).Text}
	})
	b.rule("Clause", "reorder ( IdList )", func(c []any) any {
		return &ast.ReorderClause{Indices: idents(c[2])}
	})
	b.rule("Clause", "tile Identifier by IntLit , Identifier by IntLit", func(c []any) any {
		return &ast.TileClause{IndexA: tk(c[1]).Text, FactorA: intLitOf(tk(c[3])),
			IndexB: tk(c[5]).Text, FactorB: intLitOf(tk(c[7]))}
	})
	b.rule("Clause", "unroll Identifier by IntLit", func(c []any) any {
		return &ast.UnrollClause{Index: tk(c[1]).Text, Factor: intLitOf(tk(c[3]))}
	})

	return b.spec
}

// intLitOf builds an IntLit expression from a scanned integer token.
func intLitOf(t grammar.Token) *ast.IntLit {
	n, _ := strconv.ParseInt(t.Text, 10, 64)
	lit := &ast.IntLit{Value: n}
	lit.Loc = t.Span
	return lit
}

// RcSpec builds the reference-counting pointer extension (§III-B):
// the type syntax "refcounted T *" plus explicit allocation, read and
// write forms. The matrix runtime builds on the same internal/rc model
// implicitly; this surface syntax lets programs use RC pointers
// directly.
func RcSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerRc)
	for _, kw := range []string{"refcounted", "rcnew", "rcget", "rcset"} {
		b.term(grammar.Lit(kw, kw, OwnerRc))
	}
	b.rule("Type", "refcounted Type *", func(c []any) any {
		return &ast.RcPtrType{Elem: ty(c[1])}
	})
	b.rule("Expr", "rcnew ( Expr )", func(c []any) any {
		return &ast.CallExpr{Fun: "rcnew", Args: []ast.Expr{ex(c[2])}}
	})
	b.rule("Expr", "rcget ( Expr )", func(c []any) any {
		return &ast.CallExpr{Fun: "rcget", Args: []ast.Expr{ex(c[2])}}
	})
	b.rule("Expr", "rcset ( Expr , Expr )", func(c []any) any {
		return &ast.CallExpr{Fun: "rcset", Args: []ast.Expr{ex(c[2]), ex(c[4])}}
	})
	return b.spec
}

// TupleSpec is the tuple syntax as a standalone extension — exactly
// the packaging the paper says fails the modular determinism analysis
// because its initial terminal is the host's "(". Used only by
// cmd/composecheck and tests; the default pipeline packages tuples
// with the host (HostSpec).
func TupleSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerTuple)
	b.nts("TupleTypeList")
	b.rule("Type", "( Type , TupleTypeList )", func(c []any) any {
		elems := append([]ast.TypeExpr{ty(c[1])}, c[3].([]ast.TypeExpr)...)
		return &ast.TupleType{Elems: elems}
	})
	b.rule("TupleTypeList", "Type", func(c []any) any { return []ast.TypeExpr{ty(c[0])} })
	b.rule("TupleTypeList", "TupleTypeList , Type", func(c []any) any {
		return append(c[0].([]ast.TypeExpr), c[2].(ast.TypeExpr))
	})
	b.rule("Expr", "( Expr , ExprList )", func(c []any) any {
		return &ast.TupleExpr{Elems: append([]ast.Expr{ex(c[1])}, exprs(c[3])...)}
	})
	return b.spec
}

// TupleFixedSpec is the paper's suggested fix: distinct "(|" and "|)"
// marker terminals make the tuple syntax pass the analysis.
func TupleFixedSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerTupleFix)
	b.term(grammar.Lit("(|", "(|", OwnerTupleFix))
	b.term(grammar.Lit("|)", "|)", OwnerTupleFix))
	b.nts("FTupleTypeList")
	b.rule("Type", "(| Type , FTupleTypeList |)", func(c []any) any {
		elems := append([]ast.TypeExpr{ty(c[1])}, c[3].([]ast.TypeExpr)...)
		return &ast.TupleType{Elems: elems}
	})
	b.rule("FTupleTypeList", "Type", func(c []any) any { return []ast.TypeExpr{ty(c[0])} })
	b.rule("FTupleTypeList", "FTupleTypeList , Type", func(c []any) any {
		return append(c[0].([]ast.TypeExpr), c[2].(ast.TypeExpr))
	})
	b.rule("Expr", "(| Expr , ExprList |)", func(c []any) any {
		return &ast.TupleExpr{Elems: append([]ast.Expr{ex(c[1])}, exprs(c[3])...)}
	})
	return b.spec
}
