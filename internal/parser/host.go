// Package parser defines the concrete syntax of the CMINUS host
// language and of each language extension as composable grammar.Spec
// values, with semantic actions that build the shared AST, and provides
// the front-end entry points that scan and parse extended-C source.
//
// Ownership follows the paper's packaging (§VI-A): the tuple syntax is
// part of the host (its "(" initial terminal fails the modular
// determinism analysis as a standalone extension — reproduced in
// internal/grammar tests and cmd/composecheck), while the matrix and
// transform extensions introduce all new syntax behind marker keywords
// (Matrix, with, matrixMap, init, transform) and pass the analysis.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/grammar"
	"repro/internal/lexer"
)

// Owner tags for the specs defined in this package.
const (
	OwnerHost      = grammar.HostOwner
	OwnerMatrix    = "matrix"
	OwnerTransform = "transform"
	OwnerTuple     = "tuple"      // standalone (fails the MDA, like the paper's)
	OwnerTupleFix  = "tuplefixed" // standalone with (| |) markers (passes)
	OwnerRc        = "refcount"
)

// --- small helpers shared by all spec builders ---

func tk(v any) grammar.Token  { return v.(grammar.Token) }
func ex(v any) ast.Expr       { return v.(ast.Expr) }
func st(v any) ast.Stmt       { return v.(ast.Stmt) }
func ty(v any) ast.TypeExpr   { return v.(ast.TypeExpr) }
func prim(v any) ast.PrimKind { return v.(ast.PrimKind) }
func exprs(v any) []ast.Expr  { return v.([]ast.Expr) }
func stmts(v any) []ast.Stmt  { return v.([]ast.Stmt) }
func idents(v any) []string   { return v.([]string) }

// fields splits a space-separated RHS; "" means the empty production.
func fields(rhs string) []string {
	if rhs == "" {
		return nil
	}
	var out []string
	start := -1
	for i := 0; i <= len(rhs); i++ {
		if i == len(rhs) || rhs[i] == ' ' {
			if start >= 0 {
				out = append(out, rhs[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

type specBuilder struct {
	spec *grammar.Spec
}

func newSpecBuilder(owner string) *specBuilder {
	return &specBuilder{spec: &grammar.Spec{Name: owner}}
}

func (b *specBuilder) term(t *grammar.Terminal) *grammar.Terminal {
	b.spec.Terminals = append(b.spec.Terminals, t)
	return t
}

func (b *specBuilder) nts(names ...string) {
	for _, n := range names {
		b.spec.Nonterminals = append(b.spec.Nonterminals,
			&grammar.Nonterminal{Name: n, Owner: b.spec.Name})
	}
}

func (b *specBuilder) rule(lhs, rhs string, act func(c []any) any) *grammar.Production {
	p := &grammar.Production{
		LHS: lhs, RHS: fields(rhs), Owner: b.spec.Name, Action: act,
	}
	b.spec.Productions = append(b.spec.Productions, p)
	return p
}

// ruleP is rule with an explicit %prec terminal.
func (b *specBuilder) ruleP(lhs, rhs, precTerm string, act func(c []any) any) *grammar.Production {
	p := b.rule(lhs, rhs, act)
	p.PrecTerm = precTerm
	return p
}

// StartSymbol is the grammar's start nonterminal.
const StartSymbol = "Program"

// HostSpec builds the CMINUS host-language specification: a C subset
// with functions, scalar types, control flow, expressions with C
// precedence, indexing syntax (C's comma-expression inside brackets
// makes a[i,j] host syntax), and the tuple forms packaged with the
// host per §VI-A.
func HostSpec() *grammar.Spec { return buildHost(true) }

// HostSpecCore is the host without the tuple forms. It exists so that
// cmd/composecheck can run the modular determinism analysis on the
// tuple syntax as a standalone extension and reproduce the paper's
// finding that it fails (its initial terminal is the host's "(").
func HostSpecCore() *grammar.Spec { return buildHost(false) }

func buildHost(withTuples bool) *grammar.Spec {
	b := newSpecBuilder(OwnerHost)

	// --- terminals ---
	for _, s := range lexer.StandardSkips(OwnerHost) {
		b.term(s)
	}
	b.term(grammar.Pat("Identifier", "[a-zA-Z_][a-zA-Z0-9_]*", OwnerHost))
	b.term(grammar.Pat("FloatLit", "[0-9]+\\.[0-9]+", OwnerHost))
	b.term(grammar.Pat("IntLit", "[0-9]+", OwnerHost))
	b.term(grammar.Pat("StringLit", "\"[^\"\n]*\"", OwnerHost))
	for _, kw := range []string{"int", "float", "bool", "void", "while", "for",
		"return", "break", "continue", "true", "false", "end"} {
		b.term(grammar.Lit(kw, kw, OwnerHost))
	}
	// if/else carry pseudo-precedence so the dangling else resolves to
	// shift without a recorded conflict (yacc's LOWER_THAN_ELSE trick).
	ifT := grammar.Lit("if", "if", OwnerHost)
	ifT.Prec = 1
	ifT.Assoc = AssocR
	b.term(ifT)
	elseT := grammar.Lit("else", "else", OwnerHost)
	elseT.Prec = 2
	elseT.Assoc = AssocR
	b.term(elseT)

	for _, p := range []string{"{", "}", "(", ")", ",", ";", "=", "++", "--"} {
		b.term(grammar.Lit(p, p, OwnerHost))
	}
	b.term(grammar.Lit("::", "::", OwnerHost))
	b.term(grammar.Lit(":", ":", OwnerHost))
	b.term(grammar.Lit("]", "]", OwnerHost))

	b.term(grammar.LitOp("||", "||", OwnerHost, 1, AssocL))
	b.term(grammar.LitOp("&&", "&&", OwnerHost, 2, AssocL))
	b.term(grammar.LitOp("==", "==", OwnerHost, 3, AssocL))
	b.term(grammar.LitOp("!=", "!=", OwnerHost, 3, AssocL))
	b.term(grammar.LitOp("<", "<", OwnerHost, 4, AssocL))
	b.term(grammar.LitOp("<=", "<=", OwnerHost, 4, AssocL))
	b.term(grammar.LitOp(">", ">", OwnerHost, 4, AssocL))
	b.term(grammar.LitOp(">=", ">=", OwnerHost, 4, AssocL))
	b.term(grammar.LitOp("+", "+", OwnerHost, 5, AssocL))
	b.term(grammar.LitOp("-", "-", OwnerHost, 5, AssocL))
	b.term(grammar.LitOp("*", "*", OwnerHost, 6, AssocL))
	b.term(grammar.LitOp("/", "/", OwnerHost, 6, AssocL))
	b.term(grammar.LitOp("%", "%", OwnerHost, 6, AssocL))
	b.term(grammar.LitOp(".*", ".*", OwnerHost, 6, AssocL))
	b.term(grammar.LitOp("!", "!", OwnerHost, 7, AssocR))
	b.term(grammar.LitOp("[", "[", OwnerHost, 8, AssocL))

	// --- nonterminals ---
	b.nts(StartSymbol, "DeclList", "Decl", "ParamListOpt", "ParamList", "Param",
		"Type", "PrimT",
		"Block", "StmtListOpt", "StmtList", "Stmt", "SimpleAssign",
		"ForInit", "ForPost", "ExprOpt",
		"Expr", "ExprList", "ArgListOpt", "IndexArgs", "IndexArg")
	if withTuples {
		b.nts("TypeList")
	}

	// --- productions ---
	b.rule(StartSymbol, "DeclList", func(c []any) any {
		return &ast.Program{Decls: c[0].([]ast.Decl)}
	})
	b.rule("DeclList", "Decl", func(c []any) any { return []ast.Decl{c[0].(ast.Decl)} })
	b.rule("DeclList", "DeclList Decl", func(c []any) any {
		return append(c[0].([]ast.Decl), c[1].(ast.Decl))
	})

	b.rule("Decl", "Type Identifier ( ParamListOpt ) Block", func(c []any) any {
		return &ast.FuncDecl{Ret: ty(c[0]), Name: tk(c[1]).Text,
			Params: c[3].([]*ast.Param), Body: c[5].(*ast.BlockStmt)}
	})
	b.rule("Decl", "Type Identifier ;", func(c []any) any {
		return &ast.GlobalVarDecl{Type: ty(c[0]), Name: tk(c[1]).Text}
	})
	b.rule("Decl", "Type Identifier = Expr ;", func(c []any) any {
		return &ast.GlobalVarDecl{Type: ty(c[0]), Name: tk(c[1]).Text, Init: ex(c[3])}
	})

	b.rule("ParamListOpt", "", func(c []any) any { return []*ast.Param{} })
	b.rule("ParamListOpt", "ParamList", nil)
	b.rule("ParamList", "Param", func(c []any) any { return []*ast.Param{c[0].(*ast.Param)} })
	b.rule("ParamList", "ParamList , Param", func(c []any) any {
		return append(c[0].([]*ast.Param), c[2].(*ast.Param))
	})
	b.rule("Param", "Type Identifier", func(c []any) any {
		return &ast.Param{Type: ty(c[0]), Name: tk(c[1]).Text}
	})

	// Types. Matrix types are added by the matrix extension spec.
	b.rule("Type", "PrimT", func(c []any) any { return &ast.PrimType{Kind: prim(c[0])} })
	b.rule("PrimT", "int", func(c []any) any { return ast.PrimInt })
	b.rule("PrimT", "float", func(c []any) any { return ast.PrimFloat })
	b.rule("PrimT", "bool", func(c []any) any { return ast.PrimBool })
	b.rule("PrimT", "void", func(c []any) any { return ast.PrimVoid })
	if withTuples {
		// Tuple types (packaged with the host, per the paper): (T1, T2, ...)
		b.rule("Type", "( Type , TypeList )", func(c []any) any {
			elems := append([]ast.TypeExpr{ty(c[1])}, c[3].([]ast.TypeExpr)...)
			return &ast.TupleType{Elems: elems}
		})
		b.rule("TypeList", "Type", func(c []any) any { return []ast.TypeExpr{ty(c[0])} })
		b.rule("TypeList", "TypeList , Type", func(c []any) any {
			return append(c[0].([]ast.TypeExpr), c[2].(ast.TypeExpr))
		})
	}

	// Blocks and statements.
	b.rule("Block", "{ StmtListOpt }", func(c []any) any {
		return &ast.BlockStmt{Stmts: stmts(c[1])}
	})
	b.rule("StmtListOpt", "", func(c []any) any { return []ast.Stmt{} })
	b.rule("StmtListOpt", "StmtList", nil)
	b.rule("StmtList", "Stmt", func(c []any) any { return []ast.Stmt{st(c[0])} })
	b.rule("StmtList", "StmtList Stmt", func(c []any) any {
		return append(stmts(c[0]), st(c[1]))
	})

	b.rule("Stmt", "Block", nil)
	b.rule("Stmt", "Type Identifier ;", func(c []any) any {
		return &ast.DeclStmt{Type: ty(c[0]), Name: tk(c[1]).Text}
	})
	b.rule("Stmt", "Type Identifier = Expr ;", func(c []any) any {
		return &ast.DeclStmt{Type: ty(c[0]), Name: tk(c[1]).Text, Init: ex(c[3])}
	})
	b.rule("Stmt", "SimpleAssign ;", func(c []any) any { return c[0] })
	b.rule("SimpleAssign", "Expr = Expr", func(c []any) any {
		return assignFromExpr(ex(c[0]), ex(c[2]))
	})
	b.rule("Stmt", "Expr ;", func(c []any) any { return &ast.ExprStmt{X: ex(c[0])} })
	b.rule("Stmt", "Expr ++ ;", func(c []any) any { return incDec(ex(c[0]), ast.OpAdd) })
	b.rule("Stmt", "Expr -- ;", func(c []any) any { return incDec(ex(c[0]), ast.OpSub) })

	b.ruleP("Stmt", "if ( Expr ) Stmt", "if", func(c []any) any {
		return &ast.IfStmt{Cond: ex(c[2]), Then: st(c[4])}
	})
	b.rule("Stmt", "if ( Expr ) Stmt else Stmt", func(c []any) any {
		return &ast.IfStmt{Cond: ex(c[2]), Then: st(c[4]), Else: st(c[6])}
	})
	b.rule("Stmt", "while ( Expr ) Stmt", func(c []any) any {
		return &ast.WhileStmt{Cond: ex(c[2]), Body: st(c[4])}
	})
	b.rule("Stmt", "for ( ForInit ; ExprOpt ; ForPost ) Stmt", func(c []any) any {
		f := &ast.ForStmt{Cond: &ast.BoolLit{Value: true}, Body: st(c[8])}
		if c[2] != nil {
			f.Init = c[2].(ast.Stmt)
		}
		if c[4] != nil {
			f.Cond = ex(c[4])
		}
		if c[6] != nil {
			f.Post = c[6].(ast.Stmt)
		}
		return f
	})
	b.rule("ForInit", "", func(c []any) any { return nil })
	b.rule("ForInit", "Type Identifier = Expr", func(c []any) any {
		return &ast.DeclStmt{Type: ty(c[0]), Name: tk(c[1]).Text, Init: ex(c[3])}
	})
	b.rule("ForInit", "SimpleAssign", nil)
	b.rule("ExprOpt", "", func(c []any) any { return nil })
	b.rule("ExprOpt", "Expr", nil)
	b.rule("ForPost", "", func(c []any) any { return nil })
	b.rule("ForPost", "SimpleAssign", nil)
	b.rule("ForPost", "Expr ++", func(c []any) any { return incDec(ex(c[0]), ast.OpAdd) })
	b.rule("ForPost", "Expr --", func(c []any) any { return incDec(ex(c[0]), ast.OpSub) })

	b.rule("Stmt", "return Expr ;", func(c []any) any { return &ast.ReturnStmt{Value: ex(c[1])} })
	b.rule("Stmt", "return ;", func(c []any) any { return &ast.ReturnStmt{} })
	b.rule("Stmt", "break ;", func(c []any) any { return &ast.BreakStmt{} })
	b.rule("Stmt", "continue ;", func(c []any) any { return &ast.ContinueStmt{} })

	// Expressions.
	binary := func(op ast.BinOp) func(c []any) any {
		return func(c []any) any { return &ast.BinaryExpr{Op: op, L: ex(c[0]), R: ex(c[2])} }
	}
	for _, e := range []struct {
		tok string
		op  ast.BinOp
	}{
		{"||", ast.OpOr}, {"&&", ast.OpAnd},
		{"==", ast.OpEq}, {"!=", ast.OpNe},
		{"<", ast.OpLt}, {"<=", ast.OpLe}, {">", ast.OpGt}, {">=", ast.OpGe},
		{"+", ast.OpAdd}, {"-", ast.OpSub},
		{"*", ast.OpMul}, {"/", ast.OpDiv}, {"%", ast.OpMod}, {".*", ast.OpElemMul},
	} {
		b.rule("Expr", "Expr "+e.tok+" Expr", binary(e.op))
	}
	b.rule("Expr", "! Expr", func(c []any) any {
		return &ast.UnaryExpr{Op: ast.OpNot, X: ex(c[1])}
	})
	b.ruleP("Expr", "- Expr", "!", func(c []any) any {
		return &ast.UnaryExpr{Op: ast.OpNeg, X: ex(c[1])}
	})
	b.rule("Expr", "Identifier", func(c []any) any { return &ast.Ident{Name: tk(c[0]).Text} })
	b.rule("Expr", "IntLit", func(c []any) any {
		n, _ := strconv.ParseInt(tk(c[0]).Text, 10, 64)
		return &ast.IntLit{Value: n}
	})
	b.rule("Expr", "FloatLit", func(c []any) any {
		f, _ := strconv.ParseFloat(tk(c[0]).Text, 64)
		return &ast.FloatLit{Value: f}
	})
	b.rule("Expr", "true", func(c []any) any { return &ast.BoolLit{Value: true} })
	b.rule("Expr", "false", func(c []any) any { return &ast.BoolLit{Value: false} })
	b.rule("Expr", "StringLit", func(c []any) any {
		s := tk(c[0]).Text
		return &ast.StrLit{Value: s[1 : len(s)-1]}
	})
	b.rule("Expr", "Identifier ( ArgListOpt )", func(c []any) any {
		return &ast.CallExpr{Fun: tk(c[0]).Text, Args: exprs(c[2])}
	})
	if withTuples {
		// Parenthesized expression / anonymous tuple (tuple forms are
		// host syntax; a 1-element list is plain grouping).
		b.rule("Expr", "( ExprList )", func(c []any) any {
			es := exprs(c[1])
			if len(es) == 1 {
				return es[0]
			}
			return &ast.TupleExpr{Elems: es}
		})
	} else {
		b.rule("Expr", "( Expr )", func(c []any) any { return c[1] })
	}
	// Cast.
	b.ruleP("Expr", "( PrimT ) Expr", "!", func(c []any) any {
		return &ast.CastExpr{To: prim(c[1]), X: ex(c[3])}
	})
	// MATLAB-style indexing with C comma syntax: m[i, 0:4, :, mask].
	b.ruleP("Expr", "Expr [ IndexArgs ]", "[", func(c []any) any {
		return &ast.IndexExpr{X: ex(c[0]), Args: c[2].([]ast.IndexArg)}
	})
	b.rule("IndexArgs", "IndexArg", func(c []any) any { return []ast.IndexArg{c[0].(ast.IndexArg)} })
	b.rule("IndexArgs", "IndexArgs , IndexArg", func(c []any) any {
		return append(c[0].([]ast.IndexArg), c[2].(ast.IndexArg))
	})
	b.rule("IndexArg", "Expr", func(c []any) any { return &ast.IdxScalar{X: ex(c[0])} })
	b.rule("IndexArg", "Expr : Expr", func(c []any) any {
		return &ast.IdxRange{Lo: ex(c[0]), Hi: ex(c[2])}
	})
	b.rule("IndexArg", "Expr :: Expr", func(c []any) any {
		return &ast.IdxRange{Lo: ex(c[0]), Hi: ex(c[2])}
	})
	b.rule("IndexArg", ":", func(c []any) any { return &ast.IdxAll{} })
	// 'end' in index expressions.
	b.rule("Expr", "end", func(c []any) any { return &ast.EndExpr{} })
	// Range vector literal [lo :: hi] (Fig 8 line 27).
	b.rule("Expr", "[ Expr :: Expr ]", func(c []any) any {
		return &ast.RangeExpr{Lo: ex(c[1]), Hi: ex(c[3])}
	})

	b.rule("ExprList", "Expr", func(c []any) any { return []ast.Expr{ex(c[0])} })
	b.rule("ExprList", "ExprList , Expr", func(c []any) any {
		return append(exprs(c[0]), ex(c[2]))
	})
	b.rule("ArgListOpt", "", func(c []any) any { return []ast.Expr{} })
	b.rule("ArgListOpt", "ExprList", nil)

	return b.spec
}

// Associativity aliases to keep spec builders readable.
const (
	AssocL = grammar.AssocLeft
	AssocR = grammar.AssocRight
)

// assignFromExpr turns "lhsExpr = rhs" into an AssignStmt, splitting a
// tuple LHS into a destructuring target list.
func assignFromExpr(lhs ast.Expr, rhs ast.Expr) ast.Stmt {
	if t, ok := lhs.(*ast.TupleExpr); ok {
		return &ast.AssignStmt{LHS: t.Elems, RHS: rhs}
	}
	return &ast.AssignStmt{LHS: []ast.Expr{lhs}, RHS: rhs}
}

// incDec desugars x++ / x-- to x = x ± 1.
func incDec(lhs ast.Expr, op ast.BinOp) ast.Stmt {
	return &ast.AssignStmt{
		LHS: []ast.Expr{lhs},
		RHS: &ast.BinaryExpr{Op: op, L: lhs, R: &ast.IntLit{Value: 1}},
	}
}
