// Front-end entry points: compose the selected extension grammars with
// the host, build (and cache) the LALR(1) table, and parse source text
// into the AST with the context-aware scanner.
package parser

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/grammar"
	"repro/internal/lexer"
	"repro/internal/source"
)

// Options selects the language extensions to compose with the host.
// Tuples are part of the host (see HostSpec) and always available.
type Options struct {
	Matrix    bool
	Transform bool
	Rc        bool
	Cilk      bool
}

// AllExtensions enables every extension — the configuration the
// paper's applications use (plus the Cilk extension of §VIII).
func AllExtensions() Options {
	return Options{Matrix: true, Transform: true, Rc: true, Cilk: true}
}

// Specs returns the extension specs selected by o, in composition order.
func (o Options) Specs() []*grammar.Spec {
	var out []*grammar.Spec
	if o.Matrix {
		out = append(out, MatrixSpec())
	}
	if o.Transform {
		out = append(out, TransformSpec())
	}
	if o.Rc {
		out = append(out, RcSpec())
	}
	if o.Cilk {
		out = append(out, CilkSpec())
	}
	return out
}

var (
	tableMu    sync.Mutex
	tableCache = map[Options]*grammar.Table{}
)

// BuildTable composes the host with o's extensions and constructs the
// LALR(1) table, caching per option set. The composed grammar must be
// conflict-free; a conflict is a bug in the language specs, reported
// as an error.
func BuildTable(o Options) (*grammar.Table, error) {
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[o]; ok {
		return t, nil
	}
	g, err := grammar.New(StartSymbol, HostSpec(), o.Specs()...)
	if err != nil {
		return nil, fmt.Errorf("parser: composing grammar: %w", err)
	}
	t, err := grammar.BuildTable(g)
	if err != nil {
		return nil, fmt.Errorf("parser: building table: %w", err)
	}
	if len(t.Conflicts) > 0 {
		return nil, fmt.Errorf("parser: composed grammar has %d conflicts; first: %s",
			len(t.Conflicts), t.Conflicts[0])
	}
	tableCache[o] = t
	return t, nil
}

// ParseFile scans and parses one extended-C source file. Errors are
// recorded in diags; the returned program is nil if parsing failed.
func ParseFile(name, content string, o Options, diags *source.Diagnostics) *ast.Program {
	tab, err := BuildTable(o)
	if err != nil {
		diags.Errorf(source.Span{File: name}, "%v", err)
		return nil
	}
	file := source.NewFile(name, content)
	scan := lexer.New(tab.Grammar(), file)
	res, ok := tab.Parse(scan, diags)
	if !ok {
		return nil
	}
	prog, ok := res.Value.(*ast.Program)
	if !ok {
		diags.Errorf(source.Span{File: name}, "internal error: parse produced %T", res.Value)
		return nil
	}
	prog.File = name
	prog.Loc = res.Span
	return prog
}
