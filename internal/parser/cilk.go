// The Cilk-style parallelism extension. §VIII names this as the next
// extension the authors were developing ("an extension that adds Cilk
// [4] style parallelism constructs to C. The goal is to determine how
// sophisticated run-times, like in Cilk, can be delivered as a
// pluggable language extension") — implemented here to demonstrate
// exactly that: task parallelism as a composable extension with its
// own marker-initiated syntax, attribute-grammar semantics, runtime
// (goroutine futures in the interpreter) and pthread code generation.
//
// Syntax:
//
//	spawn x = f(args);   // run f asynchronously; x receives the result at sync
//	spawn f(args);       // fire-and-forget (synced before function exit)
//	sync;                // wait for all spawns of the enclosing function
package parser

import (
	"repro/internal/ast"
	"repro/internal/grammar"
)

// OwnerCilk tags the Cilk extension's spec.
const OwnerCilk = "cilk"

// CilkSpec builds the Cilk extension grammar fragment. Both bridge
// productions start with extension-owned marker terminals (spawn,
// sync), so the extension passes the modular determinism analysis.
func CilkSpec() *grammar.Spec {
	b := newSpecBuilder(OwnerCilk)
	b.term(grammar.Lit("spawn", "spawn", OwnerCilk))
	b.term(grammar.Lit("sync", "sync", OwnerCilk))

	b.rule("Stmt", "spawn Identifier = Expr ;", func(c []any) any {
		return &ast.SpawnStmt{Target: tk(c[1]).Text, Call: ex(c[3])}
	})
	b.rule("Stmt", "spawn Expr ;", func(c []any) any {
		return &ast.SpawnStmt{Call: ex(c[1])}
	})
	b.rule("Stmt", "sync ;", func(c []any) any {
		return &ast.SyncStmt{}
	})
	return b.spec
}
