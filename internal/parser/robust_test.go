package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/source"
)

// The front end must never panic: random byte soup, random token soup
// and truncations of valid programs must all produce diagnostics (or
// parse), never crash.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		var d source.Diagnostics
		// ParseFile must return nil+diags or a program; panics fail
		// the test via the testing framework.
		p := ParseFile("fuzz.xc", string(raw), AllExtensions(), &d)
		return p != nil || d.Len() > 0 || len(strings.TrimSpace(string(raw))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTokenSoupNeverPanics(t *testing.T) {
	words := []string{
		"int", "float", "Matrix", "with", "genarray", "fold", "matrixMap",
		"init", "transform", "split", "by", "vectorize", "parallelize",
		"spawn", "sync", "refcounted", "rcnew", "if", "else", "while",
		"for", "return", "(", ")", "[", "]", "{", "}", ",", ";", "=",
		"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", ".*",
		"::", ":", "end", "x", "y", "main", "42", "3.14", `"f.data"`,
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(n); i++ {
			b.WriteString(words[r.Intn(len(words))])
			b.WriteByte(' ')
		}
		var d source.Diagnostics
		p := ParseFile("soup.xc", b.String(), AllExtensions(), &d)
		return p != nil || d.Len() > 0 || n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTruncationsOfValidProgram(t *testing.T) {
	// every prefix of a valid program either parses or errors cleanly
	for i := 0; i <= len(fig8Src); i += 7 {
		var d source.Diagnostics
		ParseFile("trunc.xc", fig8Src[:i], AllExtensions(), &d)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	bad := []string{
		`int main() { /* unterminated comment`,
		`int main() { Matrix float <`,
		`int main() { x = with ([0] <= [i] < `,
		`int main() { "unterminated string`,
		`int main() { a[0`,
		`(int, float`,
	}
	for _, src := range bad {
		var d source.Diagnostics
		if p := ParseFile("bad.xc", src, AllExtensions(), &d); p != nil {
			t.Errorf("%q should not parse", src)
		}
		if d.Len() == 0 {
			t.Errorf("%q should produce diagnostics", src)
		}
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	// deep nesting must not blow the table-driven parser
	src := "int main() { return " + strings.Repeat("(", 200) + "1" +
		strings.Repeat(")", 200) + "; }"
	var d source.Diagnostics
	if p := ParseFile("deep.xc", src, AllExtensions(), &d); p == nil {
		t.Fatalf("deep nesting failed: %s", d.String())
	}
}
