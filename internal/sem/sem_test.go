package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/attr"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
)

// checkSrc parses and checks a program, returning the info and diags.
func checkSrc(t *testing.T, src string) (*ast.Program, *Info, *source.Diagnostics) {
	t.Helper()
	var d source.Diagnostics
	prog := parser.ParseFile("t.xc", src, parser.AllExtensions(), &d)
	if prog == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	info := Check(prog, &d)
	return prog, info, &d
}

func mustCheck(t *testing.T, src string) (*ast.Program, *Info) {
	t.Helper()
	prog, info, d := checkSrc(t, src)
	if d.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", d.String())
	}
	return prog, info
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, _, d := checkSrc(t, src)
	if !d.HasErrors() {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(d.String(), wantSubstr) {
		t.Fatalf("expected error containing %q, got:\n%s", wantSubstr, d.String())
	}
}

const fig1 = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`

func TestFig1TypeChecks(t *testing.T) {
	prog, info := mustCheck(t, fig1)
	fn := prog.Decls[0].(*ast.FuncDecl)
	var w *ast.WithLoop
	for _, s := range fn.Body.Stmts {
		if a, ok := s.(*ast.AssignStmt); ok {
			if wl, ok := a.RHS.(*ast.WithLoop); ok {
				w = wl
			}
		}
	}
	got := info.TypeOf(w)
	if !types.Equal(got, types.MatrixOf(types.FloatT, 2)) {
		t.Errorf("with-loop type = %s, want Matrix float <2>", got)
	}
	// The fold body mat[i,j,k] is a scalar float.
	fo := w.Op.(*ast.GenArrayOp).Body.(*ast.BinaryExpr).L.(*ast.WithLoop).Op.(*ast.FoldOp)
	if ty := info.TypeOf(fo.Body); !types.Equal(ty, types.FloatT) {
		t.Errorf("fold body type = %s, want float", ty)
	}
}

const fig8 = `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
	float y1 = areaOfInterest[0];
	float y2 = areaOfInterest[end];
	int x1 = 0;
	int x2 = dimSize(areaOfInterest, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - areaOfInterest[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	while (ts[i] < ts[i + 1])
		i = i + 1;
	int n = dimSize(ts, 0);
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}

int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

func TestFig8TypeChecks(t *testing.T) {
	_, info := mustCheck(t, fig8)
	if sig, ok := info.Funcs["getTrough"]; !ok {
		t.Error("getTrough signature missing")
	} else if sig.Type.Ret.Kind != types.Tuple {
		t.Errorf("getTrough returns %s, want tuple", sig.Type.Ret)
	}
}

func TestMatrixMapTyping(t *testing.T) {
	prog, info := mustCheck(t, `
Matrix int <2> connComp(Matrix float <2> s) {
	return init(Matrix int <2>, dimSize(s, 0), dimSize(s, 1));
}
int main() {
	Matrix float <3> ssh = readMatrix("x");
	Matrix int <3> labels = matrixMap(connComp, ssh, [0, 1]);
	return 0;
}
`)
	main := prog.Decls[1].(*ast.FuncDecl)
	d := main.Body.Stmts[1].(*ast.DeclStmt)
	got := info.TypeOf(d.Init)
	// element type from connComp's result, rank from the argument.
	if !types.Equal(got, types.MatrixOf(types.IntT, 3)) {
		t.Errorf("matrixMap type = %s, want Matrix int <3>", got)
	}
}

func TestIndexingTypes(t *testing.T) {
	prog, info := mustCheck(t, `
int main() {
	Matrix float <3> d = readMatrix("x");
	float a = d[6, 4, 1];
	Matrix float <3> b = d[0:4, end-4:end, 0:4];
	Matrix float <1> c = d[0, end, :];
	Matrix int <1> v = [0 :: 9];
	Matrix float <2> e = d[v % 2 == 1, :, 0];
	return 0;
}
`)
	main := prog.Decls[0].(*ast.FuncDecl)
	wants := []struct {
		i    int
		want *types.Type
	}{
		{1, types.FloatT},
		{2, types.MatrixOf(types.FloatT, 3)},
		{3, types.MatrixOf(types.FloatT, 1)},
		{4, types.MatrixOf(types.IntT, 1)},
		{5, types.MatrixOf(types.FloatT, 2)},
	}
	for _, w := range wants {
		d := main.Body.Stmts[w.i].(*ast.DeclStmt)
		if got := info.TypeOf(d.Init); !types.Equal(got, w.want) {
			t.Errorf("stmt %d init type = %s, want %s", w.i, got, w.want)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `int main() { return x; }`, "undeclared variable"},
		{"undeclared func", `int main() { return f(); }`, "undeclared function"},
		{"bad arity", `int f(int a) { return a; } int main() { return f(); }`, "expects 1 argument"},
		{"rank mismatch add", `int main() {
			Matrix float <2> a = init(Matrix float <2>, 2, 2);
			Matrix float <3> b = init(Matrix float <3>, 2, 2, 2);
			Matrix float <2> c = a + b;
			return 0; }`, "equal rank"},
		{"matmul rank", `int main() {
			Matrix float <3> a = init(Matrix float <3>, 2, 2, 2);
			Matrix float <3> c = a * a;
			return 0; }`, "rank-2"},
		{"with arity", `int main() {
			Matrix float <2> m;
			m = with ([0, 0] <= [i] < [4, 4]) genarray([4, 4], 0.0);
			return 0; }`, "arity mismatch"},
		{"genarray dims", `int main() {
			Matrix float <1> m;
			m = with ([0] <= [i] < [4]) genarray([4, 4], 0.0);
			return 0; }`, "genarray shape"},
		{"index count", `int main() {
			Matrix float <2> m = init(Matrix float <2>, 2, 2);
			float x = m[0];
			return 0; }`, "requires 2 index"},
		{"end outside", `int main() { int x = end; return x; }`, "'end' is only valid"},
		{"assign mismatch", `int main() {
			Matrix int <1> m = init(Matrix int <1>, 3);
			Matrix float <1> f = init(Matrix float <1>, 3);
			m = f;
			return 0; }`, "cannot assign"},
		{"destructure arity", `(int, int) f() { return (1, 2); }
			int main() { int a; int b; int c; (a, b, c) = f(); return 0; }`, "destructure"},
		{"cond not bool", `int main() { if (1) { return 0; } return 1; }`, "must be bool"},
		{"break outside", `int main() { break; return 0; }`, "outside a loop"},
		{"dup decl", `int main() { int x = 1; int x = 2; return x; }`, "already declared"},
		{"void var", `int main() { void v; return 0; }`, "void type"},
		{"return mismatch", `int main() { return 1.5; }`, "cannot return"},
		{"void return value", `void f() { return 3; } int main() { return 0; }`, "void function"},
		{"split bad index", `int main() {
			Matrix float <1> m;
			m = with ([0] <= [i] < [4]) genarray([4], 0.0) transform split q by 4, a, b;
			return 0; }`, "no loop index"},
		{"vectorize after split", `int main() {
			Matrix float <1> m;
			m = with ([0] <= [i] < [8]) genarray([8], 0.0)
				transform split i by 4, iin, iout. vectorize i;
			return 0; }`, "no loop index"},
		{"split name collision", `int main() {
			Matrix float <2> m;
			m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 0.0) transform split i by 2, j, iout;
			return 0; }`, "collides"},
		{"matrixMap bad dim", `Matrix float <1> f(Matrix float <1> x) { return x; }
			int main() {
			Matrix float <2> m = init(Matrix float <2>, 2, 2);
			Matrix float <2> r = matrixMap(f, m, [5]);
			return 0; }`, "out of range"},
		{"matrixMap bad sig", `int g(int x) { return x; }
			int main() {
			Matrix float <2> m = init(Matrix float <2>, 2, 2);
			Matrix float <2> r = matrixMap(g, m, [0]);
			return 0; }`, "must take exactly one"},
		{"init wrong dims", `int main() {
			Matrix float <2> m = init(Matrix float <2>, 4);
			return 0; }`, "dimension size"},
		{"logical index rank", `int main() {
			Matrix float <2> m = init(Matrix float <2>, 2, 2);
			Matrix bool <2> b = m > 0.0;
			Matrix float <1> r = m[b, 0];
			return 0; }`, "logical index"},
		{"mod float", `int main() { float f = 1.5; int x = f % 2; return x; }`, "requires int"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { mustFail(t, c.src, c.want) })
	}
}

func TestValidPrograms(t *testing.T) {
	srcs := []string{
		// rc extension end to end
		`int main() { refcounted int * p = rcnew(41); rcset(p, rcget(p) + 1); return rcget(p); }`,
		// matrix/scalar broadcast and promotion
		`int main() {
			Matrix int <1> v = [0 :: 9];
			Matrix float <1> f = v * 2 + 0.5;
			return 0; }`,
		// bool matrix ops
		`int main() {
			Matrix float <2> m = init(Matrix float <2>, 3, 3);
			Matrix bool <2> b = (m > 1.0) && (m < 2.0);
			Matrix bool <2> c = !b;
			return 0; }`,
		// fold min/max over ints
		`int main() {
			Matrix int <1> v = [0 :: 9];
			int mx = with ([0] <= [i] < [10]) fold(max, 0, v[i]);
			int mn = with ([0] <= [i] < [10]) fold(min, 0, v[i]);
			return mx + mn; }`,
		// nested with-loop scoping: i and j visible in inner loop
		fig1,
		// shadowing in nested blocks
		`int main() { int x = 1; { int x = 2; x = 3; } return x; }`,
		// matrix elementwise .* at rank 3
		`int main() {
			Matrix float <3> a = init(Matrix float <3>, 2, 2, 2);
			Matrix float <3> b = a .* a;
			return 0; }`,
		// global variables
		`int g = 3; float h = 2.5; int main() { h = h + g; return g; }`,
	}
	for i, src := range srcs {
		_, _, d := checkSrc(t, src)
		if d.HasErrors() {
			t.Errorf("program %d should check:\n%s", i, d.String())
		}
	}
}

func TestTypesRecordedForAllExprs(t *testing.T) {
	prog, info := mustCheck(t, fig1)
	missing := 0
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		if _, ok := info.Types[e]; !ok {
			missing++
			t.Errorf("no type recorded for %s", ast.ExprString(e))
		}
		switch e := e.(type) {
		case *ast.BinaryExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *ast.IndexExpr:
			walkExpr(e.X)
		case *ast.WithLoop:
			for _, x := range e.Lower {
				walkExpr(x)
			}
			for _, x := range e.Upper {
				walkExpr(x)
			}
		case *ast.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	fn := prog.Decls[0].(*ast.FuncDecl)
	for _, s := range fn.Body.Stmts {
		switch s := s.(type) {
		case *ast.DeclStmt:
			walkExpr(s.Init)
		case *ast.AssignStmt:
			walkExpr(s.RHS)
		}
	}
	_ = missing
}

// --- MWDA over the real language specs (§VI-B: "All extensions
// described above pass this analysis.") ---

func TestRealSpecsPassMWDA(t *testing.T) {
	info := NewInfo()
	host := HostAG(info, hostBuiltins())
	if r := attr.CheckWellDefined(host, MatrixAG(info)); !r.Passed {
		t.Errorf("matrix semantic spec must pass MWDA: %s", r)
	}
	// The transform extension builds on host ∪ matrix.
	merged := HostAG(info, hostBuiltins())
	m := MatrixAG(info)
	merged.NTs = append(merged.NTs, m.NTs...)
	merged.Attrs = append(merged.Attrs, m.Attrs...)
	merged.Occurs = append(merged.Occurs, m.Occurs...)
	merged.Prods = append(merged.Prods, m.Prods...)
	merged.SynEqs = append(merged.SynEqs, m.SynEqs...)
	merged.InhEqs = append(merged.InhEqs, m.InhEqs...)
	for i := range merged.Prods {
		merged.Prods[i].Owner = ""
	}
	if r := attr.CheckWellDefined(merged, TransformAG(info)); !r.Passed {
		t.Errorf("transform semantic spec must pass MWDA: %s", r)
	}
}

func TestComposedSemanticGrammarComplete(t *testing.T) {
	info := NewInfo()
	g, err := ComposeAG(info)
	if err != nil {
		t.Fatal(err)
	}
	if missing := g.CheckComplete(); len(missing) != 0 {
		t.Errorf("composed semantic grammar incomplete:\n%s", strings.Join(missing, "\n"))
	}
}
