// Semantic attribute-grammar fragments contributed by the matrix and
// transform extensions. These add equations for the host's analysis
// attributes on the extensions' own productions (with-loops,
// matrixMap, init, transform clauses), plus the transform extension's
// own loopIds/idsOut attributes — composing with the host spec exactly
// as the paper's Silver extension specifications do.
package sem

import (
	"repro/internal/ast"
	"repro/internal/attr"
	"repro/internal/types"
)

// OwnerMatrixSem and OwnerTransformSem tag the extension AG specs.
const (
	OwnerMatrixSem    = "matrix"
	OwnerTransformSem = "transform"
)

// MatrixAG builds the matrix extension's semantic specification.
func MatrixAG(info *Info) *attr.AGSpec {
	s := &attr.AGSpec{Name: OwnerMatrixSem}
	s.NTs = []attr.NTDecl{
		{Name: ntWithOp, Owner: OwnerMatrixSem},
		{Name: ntWithSuffix, Owner: OwnerMatrixSem},
	}
	occ := func(a string, nts ...string) {
		for _, nt := range nts {
			s.Occurs = append(s.Occurs, attr.Occurs{Attr: a, NT: nt, Owner: OwnerMatrixSem})
		}
	}
	occ("errs", ntWithOp, ntWithSuffix)
	occ("ownErrs", ntWithOp, ntWithSuffix)
	occ("typ", ntWithOp)
	occ("env", ntWithOp)

	p := func(name, lhs string, variadic bool, kids ...string) {
		s.Prods = append(s.Prods, attr.ProdDecl{Name: name, LHS: lhs, ChildNTs: kids,
			Variadic: variadic, Owner: OwnerMatrixSem})
	}
	p("withLoop", ntExpr, false, ntExprList, ntExprList, ntWithOp, ntWithSuffix)
	p("genarrayOp", ntWithOp, false, ntExprList, ntExpr)
	p("foldOp", ntWithOp, false, ntExpr, ntExpr)
	p("matrixMap", ntExpr, false, ntExpr)
	p("initExpr", ntExpr, false, ntExprList)
	p("emptySuffix", ntWithSuffix, false)

	syn := func(prod, attrName string, f func(t *attr.Tree) any) {
		s.SynEqs = append(s.SynEqs, attr.SynEq{Prod: prod, Attr: attrName, Owner: OwnerMatrixSem, F: f})
	}
	inh := func(prod string, child int, attrName string, f func(p *attr.Tree, c int) any) {
		s.InhEqs = append(s.InhEqs, attr.InhEq{Prod: prod, Child: child, Attr: attrName,
			Owner: OwnerMatrixSem, F: f})
	}

	// --- with-loop (§III-A.4) ---
	syn("withLoop", "typ", func(t *attr.Tree) any {
		ty := typOf(t.Child(2))
		info.Types[t.Value.(ast.Expr)] = ty
		return ty
	})
	syn("withLoop", "ownErrs", func(t *attr.Tree) any {
		w := t.Value.(*ast.WithLoop)
		var errs errlist
		// "The number of expressions in both the upper bound and lower
		// bound should match the number of Id's provided" (§III-A.4).
		if len(w.Lower) != len(w.Ids) || len(w.Upper) != len(w.Ids) {
			errs = append(errs, errf(w,
				"with-loop generator arity mismatch: %d lower bound(s), %d index(es), %d upper bound(s)",
				len(w.Lower), len(w.Ids), len(w.Upper)))
		}
		seen := map[string]bool{}
		for _, id := range w.Ids {
			if seen[id] {
				errs = append(errs, errf(w, "duplicate with-loop index %q", id))
			}
			seen[id] = true
		}
		for bi, ts := range [][]*types.Type{typsOf(t.Child(0)), typsOf(t.Child(1))} {
			bounds := [][]ast.Expr{w.Lower, w.Upper}[bi]
			for i, ty := range ts {
				if ty.Kind != types.Int && ty.Kind != types.Invalid {
					at := ast.Node(w)
					if i < len(bounds) {
						at = bounds[i]
					}
					errs = append(errs, errf(at, "with-loop bounds must be int, got %s", ty))
				}
			}
		}
		// "...which should also match the number of dimensions provided
		// in the Operation."
		if ga, ok := w.Op.(*ast.GenArrayOp); ok && len(ga.Shape) != len(w.Ids) {
			errs = append(errs, errf(ga,
				"genarray shape has %d dimension(s) but the generator defines %d index(es)",
				len(ga.Shape), len(w.Ids)))
		}
		return errs
	})
	inh("withLoop", 0, "env", func(p *attr.Tree, c int) any { return env(p) })
	inh("withLoop", 1, "env", func(p *attr.Tree, c int) any { return env(p) })
	inh("withLoop", 0, "inIndex", func(p *attr.Tree, c int) any { return false })
	inh("withLoop", 1, "inIndex", func(p *attr.Tree, c int) any { return false })
	inh("withLoop", 2, "env", func(p *attr.Tree, c int) any {
		w := p.Value.(*ast.WithLoop)
		sc := env(p).Push()
		for _, id := range w.Ids {
			sc = sc.Bind(id, types.IntT, w)
		}
		return sc
	})

	// --- genarray ---
	syn("genarrayOp", "typ", func(t *attr.Tree) any {
		op := t.Value.(*ast.GenArrayOp)
		body := typOf(t.Child(1))
		if !body.IsScalar() {
			return types.InvalidT
		}
		return types.MatrixOf(body, len(op.Shape))
	})
	syn("genarrayOp", "ownErrs", func(t *attr.Tree) any {
		op := t.Value.(*ast.GenArrayOp)
		var errs errlist
		for i, ty := range typsOf(t.Child(0)) {
			if ty.Kind != types.Int && ty.Kind != types.Invalid {
				at := ast.Node(op)
				if i < len(op.Shape) {
					at = op.Shape[i]
				}
				errs = append(errs, errf(at, "genarray shape must be int expressions, got %s", ty))
			}
		}
		body := typOf(t.Child(1))
		if !body.IsScalar() && body.Kind != types.Invalid {
			errs = append(errs, errf(op.Body, "genarray element expression must be scalar, got %s", body))
		}
		return errs
	})
	inh("genarrayOp", -1, "env", func(p *attr.Tree, c int) any { return p.Inh("env") })
	inh("genarrayOp", 0, "inIndex", func(p *attr.Tree, c int) any { return false })
	inh("genarrayOp", 1, "inIndex", func(p *attr.Tree, c int) any { return false })

	// --- fold ---
	syn("foldOp", "typ", func(t *attr.Tree) any {
		op := t.Value.(*ast.FoldOp)
		base, body := typOf(t.Child(0)), typOf(t.Child(1))
		if base.Kind == types.Invalid || body.Kind == types.Invalid {
			return types.InvalidT
		}
		if !base.IsNumeric() || !body.IsNumeric() {
			return types.InvalidT
		}
		_ = op
		if base.Kind == types.Float || body.Kind == types.Float {
			return types.FloatT
		}
		return types.IntT
	})
	syn("foldOp", "ownErrs", func(t *attr.Tree) any {
		op := t.Value.(*ast.FoldOp)
		base, body := typOf(t.Child(0)), typOf(t.Child(1))
		var errs errlist
		if base.Kind != types.Invalid && !base.IsNumeric() {
			errs = append(errs, errf(op.Init, "fold base value must be numeric, got %s", base))
		}
		if body.Kind != types.Invalid && !body.IsNumeric() {
			errs = append(errs, errf(op.Body, "fold body must be numeric, got %s", body))
		}
		return errs
	})
	inh("foldOp", -1, "env", func(p *attr.Tree, c int) any { return p.Inh("env") })
	inh("foldOp", 0, "inIndex", func(p *attr.Tree, c int) any { return false })
	inh("foldOp", 1, "inIndex", func(p *attr.Tree, c int) any { return false })

	// --- matrixMap (§III-A.5) ---
	mmResolve := func(t *attr.Tree) (*types.Type, errlist) {
		m := t.Value.(*ast.MatrixMap)
		arg := typOf(t.Child(0))
		if arg.Kind == types.Invalid {
			return types.InvalidT, nil
		}
		if arg.Kind != types.Matrix {
			return types.InvalidT, errlist{errf(m.Arg, "matrixMap requires a matrix argument, got %s", arg)}
		}
		var dims []int
		seen := map[int]bool{}
		var errs errlist
		for _, d := range m.Dims {
			lit, ok := d.(*ast.IntLit)
			if !ok {
				errs = append(errs, errf(d, "matrixMap dimensions must be integer literals"))
				continue
			}
			v := int(lit.Value)
			if v < 0 || v >= arg.Rank {
				errs = append(errs, errf(d, "matrixMap dimension %d out of range for rank-%d matrix", v, arg.Rank))
				continue
			}
			if seen[v] {
				errs = append(errs, errf(d, "duplicate matrixMap dimension %d", v))
				continue
			}
			seen[v] = true
			dims = append(dims, v)
		}
		if len(errs) > 0 {
			return types.InvalidT, errs
		}
		if len(dims) == 0 || len(dims) >= arg.Rank {
			return types.InvalidT, errlist{errf(m,
				"matrixMap must select between 1 and rank-1 dimensions (rank %d, selected %d)", arg.Rank, len(dims))}
		}
		sig := env(t).Lookup(m.Fun)
		if sig == nil {
			return types.InvalidT, errlist{errf(m, "undeclared function %q in matrixMap", m.Fun)}
		}
		ft := sig.Type
		if ft.Kind != types.Func {
			return types.InvalidT, errlist{errf(m, "%q is not a function", m.Fun)}
		}
		want := types.MatrixOf(arg.Elem, len(dims))
		if len(ft.Params) != 1 || !types.Equal(ft.Params[0], want) {
			return types.InvalidT, errlist{errf(m,
				"matrixMap function %q must take exactly one %s parameter, has signature %s", m.Fun, want, ft)}
		}
		ret := ft.Ret
		if ret.Kind != types.Matrix || ret.Rank != len(dims) {
			return types.InvalidT, errlist{errf(m,
				"matrixMap function %q must return a rank-%d matrix, returns %s", m.Fun, len(dims), ret)}
		}
		// "the result is always the same size and rank as the matrix
		// getting mapped over" — element type comes from f's result.
		return types.MatrixOf(ret.Elem, arg.Rank), nil
	}
	syn("matrixMap", "typ", func(t *attr.Tree) any {
		ty, _ := mmResolve(t)
		info.Types[t.Value.(ast.Expr)] = ty
		return ty
	})
	syn("matrixMap", "ownErrs", func(t *attr.Tree) any { _, errs := mmResolve(t); return errs })
	inh("matrixMap", 0, "env", func(p *attr.Tree, c int) any { return env(p) })
	inh("matrixMap", 0, "inIndex", func(p *attr.Tree, c int) any { return false })

	// --- init ---
	initResolve := func(t *attr.Tree) (*types.Type, errlist) {
		e := t.Value.(*ast.InitExpr)
		if e.Type == nil {
			return types.InvalidT, errlist{errf(e, "init requires a Matrix type as its first argument")}
		}
		ty, errs := resolveType(e.Type, e)
		if ty.Kind != types.Matrix {
			return types.InvalidT, errs
		}
		if len(e.Dims) != ty.Rank {
			errs = append(errs, errf(e, "init of %s requires %d dimension size(s), got %d",
				ty, ty.Rank, len(e.Dims)))
		}
		for i, dt := range typsOf(t.Child(0)) {
			if dt.Kind != types.Int && dt.Kind != types.Invalid {
				at := ast.Node(e)
				if i < len(e.Dims) {
					at = e.Dims[i]
				}
				errs = append(errs, errf(at, "init dimension sizes must be int, got %s", dt))
			}
		}
		return ty, errs
	}
	syn("initExpr", "typ", func(t *attr.Tree) any {
		ty, _ := initResolve(t)
		info.Types[t.Value.(ast.Expr)] = ty
		return ty
	})
	syn("initExpr", "ownErrs", func(t *attr.Tree) any { _, errs := initResolve(t); return errs })
	inh("initExpr", 0, "env", func(p *attr.Tree, c int) any { return env(p) })
	inh("initExpr", 0, "inIndex", func(p *attr.Tree, c int) any { return false })

	// --- empty transform suffix ---
	syn("emptySuffix", "ownErrs", func(t *attr.Tree) any { return errlist(nil) })

	addErrsProjections(s, info)
	return s
}

// TransformAG builds the transform extension's semantic specification
// (§V): clause indices must name loop indices that exist at that point
// in the clause sequence, split/tile factors must be positive, and
// split-introduced names must be fresh.
func TransformAG(info *Info) *attr.AGSpec {
	s := &attr.AGSpec{Name: OwnerTransformSem}
	s.NTs = []attr.NTDecl{{Name: ntClause, Owner: OwnerTransformSem}}
	s.Attrs = []attr.AttrDecl{
		{Name: "loopIds", Kind: attr.Inherited, Owner: OwnerTransformSem},
		{Name: "idsOut", Kind: attr.Synthesized, Owner: OwnerTransformSem},
	}
	s.Occurs = []attr.Occurs{
		{Attr: "loopIds", NT: ntWithSuffix, Owner: OwnerTransformSem},
		{Attr: "loopIds", NT: ntClause, Owner: OwnerTransformSem},
		{Attr: "idsOut", NT: ntClause, Owner: OwnerTransformSem},
		{Attr: "errs", NT: ntClause, Owner: OwnerTransformSem},
		{Attr: "ownErrs", NT: ntClause, Owner: OwnerTransformSem},
	}
	p := func(name string, lhs string, variadic bool, kids ...string) {
		s.Prods = append(s.Prods, attr.ProdDecl{Name: name, LHS: lhs, ChildNTs: kids,
			Variadic: variadic, Owner: OwnerTransformSem})
	}
	p("transformSuffix", ntWithSuffix, true, ntClause)
	for _, c := range []string{"splitClause", "vectorizeClause", "parallelizeClause",
		"reorderClause", "tileClause", "unrollClause"} {
		p(c, ntClause, false)
	}

	syn := func(prod, attrName string, f func(t *attr.Tree) any) {
		s.SynEqs = append(s.SynEqs, attr.SynEq{Prod: prod, Attr: attrName, Owner: OwnerTransformSem, F: f})
	}
	inh := func(prod string, child int, attrName string, f func(p *attr.Tree, c int) any) {
		s.InhEqs = append(s.InhEqs, attr.InhEq{Prod: prod, Child: child, Attr: attrName,
			Owner: OwnerTransformSem, F: f})
	}

	// The matrix extension's withLoop production supplies the initial
	// loop-index set to its WithSuffix child. The transform extension
	// owns the loopIds attribute, so it provides this equation — the
	// composition pattern the MWDA's ownership rule permits.
	inh("withLoop", 3, "loopIds", func(p *attr.Tree, c int) any {
		return append([]string(nil), p.Value.(*ast.WithLoop).Ids...)
	})

	syn("transformSuffix", "ownErrs", func(t *attr.Tree) any { return errlist(nil) })
	inh("transformSuffix", -1, "loopIds", func(p *attr.Tree, c int) any {
		if c == 0 {
			return p.Inh("loopIds")
		}
		return p.Child(c - 1).Syn("idsOut")
	})

	ids := func(t *attr.Tree) []string { return t.Inh("loopIds").([]string) }
	has := func(list []string, x string) bool {
		for _, s := range list {
			if s == x {
				return true
			}
		}
		return false
	}

	syn("splitClause", "ownErrs", func(t *attr.Tree) any {
		c := t.Value.(*ast.SplitClause)
		var errs errlist
		if !has(ids(t), c.Index) {
			errs = append(errs, errf(c, "split: no loop index %q in this with-loop (have %s)", c.Index, fmtNames(ids(t))))
		}
		if f, ok := c.Factor.(*ast.IntLit); !ok || f.Value < 1 {
			errs = append(errs, errf(c, "split factor must be a positive integer"))
		}
		if c.Inner == c.Outer {
			errs = append(errs, errf(c, "split inner and outer names must differ"))
		}
		for _, n := range []string{c.Inner, c.Outer} {
			if has(ids(t), n) {
				errs = append(errs, errf(c, "split name %q collides with an existing loop index", n))
			}
		}
		return errs
	})
	syn("splitClause", "idsOut", func(t *attr.Tree) any {
		c := t.Value.(*ast.SplitClause)
		var out []string
		for _, id := range ids(t) {
			if id != c.Index {
				out = append(out, id)
			}
		}
		return append(out, c.Inner, c.Outer)
	})

	indexOnly := func(word string, get func(v any) string) func(t *attr.Tree) any {
		return func(t *attr.Tree) any {
			idx := get(t.Value)
			if !has(ids(t), idx) {
				return errlist{errf(t.Value.(ast.Node),
					"%s: no loop index %q in this with-loop (have %s)", word, idx, fmtNames(ids(t)))}
			}
			return errlist(nil)
		}
	}
	passIds := func(t *attr.Tree) any { return ids(t) }

	syn("vectorizeClause", "ownErrs", indexOnly("vectorize",
		func(v any) string { return v.(*ast.VectorizeClause).Index }))
	syn("vectorizeClause", "idsOut", passIds)
	syn("parallelizeClause", "ownErrs", indexOnly("parallelize",
		func(v any) string { return v.(*ast.ParallelizeClause).Index }))
	syn("parallelizeClause", "idsOut", passIds)

	syn("reorderClause", "ownErrs", func(t *attr.Tree) any {
		c := t.Value.(*ast.ReorderClause)
		var errs errlist
		for _, idx := range c.Indices {
			if !has(ids(t), idx) {
				errs = append(errs, errf(c, "reorder: no loop index %q in this with-loop (have %s)", idx, fmtNames(ids(t))))
			}
		}
		return errs
	})
	syn("reorderClause", "idsOut", passIds)

	syn("tileClause", "ownErrs", func(t *attr.Tree) any {
		c := t.Value.(*ast.TileClause)
		var errs errlist
		for _, idx := range []string{c.IndexA, c.IndexB} {
			if !has(ids(t), idx) {
				errs = append(errs, errf(c, "tile: no loop index %q in this with-loop (have %s)", idx, fmtNames(ids(t))))
			}
		}
		for _, f := range []ast.Expr{c.FactorA, c.FactorB} {
			if lit, ok := f.(*ast.IntLit); !ok || lit.Value < 1 {
				errs = append(errs, errf(c, "tile factors must be positive integers"))
			}
		}
		if c.IndexA == c.IndexB {
			errs = append(errs, errf(c, "tile requires two distinct loop indices"))
		}
		return errs
	})
	syn("tileClause", "idsOut", func(t *attr.Tree) any {
		// tile desugars to split a + split b + reorder (see loopir);
		// the derived inner/outer names are internal, so later clauses
		// keep referring to the original indices.
		return ids(t)
	})

	syn("unrollClause", "ownErrs", func(t *attr.Tree) any {
		c := t.Value.(*ast.UnrollClause)
		errs := indexOnly("unroll", func(v any) string { return v.(*ast.UnrollClause).Index })(t).(errlist)
		if lit, ok := c.Factor.(*ast.IntLit); !ok || lit.Value < 1 {
			errs = append(errs, errf(c, "unroll factor must be a positive integer"))
		}
		return errs
	})
	syn("unrollClause", "idsOut", passIds)

	addErrsProjections(s, info)
	return s
}
