// Mapping from the AST to decorated attribute-grammar trees. Each AST
// node becomes an attr.Tree whose production identifies the node kind
// and whose Value is the AST node itself, so attribute equations can
// read literal values, identifier names, declared types and spans.
package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/attr"
)

// BuildTree converts a parsed program into a decorated tree for g.
func BuildTree(g *attr.Grammar, prog *ast.Program) *attr.Tree {
	b := &treeBuilder{g: g}
	kids := make([]*attr.Tree, len(prog.Decls))
	for i, d := range prog.Decls {
		kids[i] = b.decl(d)
	}
	return g.MustTree("program", prog, kids...)
}

type treeBuilder struct {
	g *attr.Grammar
}

func (b *treeBuilder) decl(d ast.Decl) *attr.Tree {
	switch d := d.(type) {
	case *ast.FuncDecl:
		return b.g.MustTree("funcDecl", d, b.stmt(d.Body))
	case *ast.GlobalVarDecl:
		if d.Init != nil {
			return b.g.MustTree("globalVarInit", d, b.expr(d.Init))
		}
		return b.g.MustTree("globalVar", d)
	}
	panic(fmt.Sprintf("sem: unknown decl %T", d))
}

func (b *treeBuilder) stmt(s ast.Stmt) *attr.Tree {
	switch s := s.(type) {
	case nil:
		return b.g.MustTree("emptyStmt", nil)
	case *ast.BlockStmt:
		kids := make([]*attr.Tree, len(s.Stmts))
		for i, st := range s.Stmts {
			kids[i] = b.stmt(st)
		}
		return b.g.MustTree("block", s, kids...)
	case *ast.DeclStmt:
		if s.Init != nil {
			return b.g.MustTree("declStmtInit", s, b.expr(s.Init))
		}
		return b.g.MustTree("declStmt", s)
	case *ast.AssignStmt:
		return b.g.MustTree("assign", s, b.exprList(s.LHS), b.expr(s.RHS))
	case *ast.IfStmt:
		if s.Else != nil {
			return b.g.MustTree("ifElseStmt", s, b.expr(s.Cond), b.stmt(s.Then), b.stmt(s.Else))
		}
		return b.g.MustTree("ifStmt", s, b.expr(s.Cond), b.stmt(s.Then))
	case *ast.WhileStmt:
		return b.g.MustTree("whileStmt", s, b.expr(s.Cond), b.stmt(s.Body))
	case *ast.ForStmt:
		return b.g.MustTree("forStmt", s, b.stmt(s.Init), b.expr(s.Cond), b.stmt(s.Post), b.stmt(s.Body))
	case *ast.ReturnStmt:
		if s.Value != nil {
			return b.g.MustTree("returnStmt", s, b.expr(s.Value))
		}
		return b.g.MustTree("returnVoid", s)
	case *ast.ExprStmt:
		return b.g.MustTree("exprStmt", s, b.expr(s.X))
	case *ast.BreakStmt:
		return b.g.MustTree("breakStmt", s)
	case *ast.ContinueStmt:
		return b.g.MustTree("continueStmt", s)
	case *ast.SpawnStmt:
		return b.g.MustTree("spawnStmt", s, b.expr(s.Call))
	case *ast.SyncStmt:
		return b.g.MustTree("syncStmt", s)
	}
	panic(fmt.Sprintf("sem: unknown stmt %T", s))
}

func (b *treeBuilder) exprList(es []ast.Expr) *attr.Tree {
	kids := make([]*attr.Tree, len(es))
	for i, e := range es {
		kids[i] = b.expr(e)
	}
	return b.g.MustTree("exprList", es, kids...)
}

func (b *treeBuilder) expr(e ast.Expr) *attr.Tree {
	switch e := e.(type) {
	case *ast.IntLit:
		return b.g.MustTree("intLit", e)
	case *ast.FloatLit:
		return b.g.MustTree("floatLit", e)
	case *ast.BoolLit:
		return b.g.MustTree("boolLit", e)
	case *ast.StrLit:
		return b.g.MustTree("strLit", e)
	case *ast.Ident:
		return b.g.MustTree("ident", e)
	case *ast.BinaryExpr:
		return b.g.MustTree("binary", e, b.expr(e.L), b.expr(e.R))
	case *ast.UnaryExpr:
		return b.g.MustTree("unary", e, b.expr(e.X))
	case *ast.CallExpr:
		return b.g.MustTree("call", e, b.exprList(e.Args))
	case *ast.CastExpr:
		return b.g.MustTree("cast", e, b.expr(e.X))
	case *ast.IndexExpr:
		kids := make([]*attr.Tree, len(e.Args))
		for i, a := range e.Args {
			kids[i] = b.idxArg(a)
		}
		return b.g.MustTree("index", e, b.expr(e.X), b.g.MustTree("idxArgList", e.Args, kids...))
	case *ast.EndExpr:
		return b.g.MustTree("endExpr", e)
	case *ast.RangeExpr:
		return b.g.MustTree("rangeExpr", e, b.expr(e.Lo), b.expr(e.Hi))
	case *ast.TupleExpr:
		return b.g.MustTree("tupleExpr", e, b.exprList(e.Elems))
	case *ast.WithLoop:
		return b.g.MustTree("withLoop", e,
			b.exprList(e.Lower), b.exprList(e.Upper), b.withOp(e.Op), b.suffix(e.Transforms))
	case *ast.MatrixMap:
		return b.g.MustTree("matrixMap", e, b.expr(e.Arg))
	case *ast.InitExpr:
		return b.g.MustTree("initExpr", e, b.exprList(e.Dims))
	}
	panic(fmt.Sprintf("sem: unknown expr %T", e))
}

func (b *treeBuilder) idxArg(a ast.IndexArg) *attr.Tree {
	switch a := a.(type) {
	case *ast.IdxScalar:
		return b.g.MustTree("idxScalar", a, b.expr(a.X))
	case *ast.IdxRange:
		return b.g.MustTree("idxRange", a, b.expr(a.Lo), b.expr(a.Hi))
	case *ast.IdxAll:
		return b.g.MustTree("idxAll", a)
	}
	panic(fmt.Sprintf("sem: unknown index arg %T", a))
}

func (b *treeBuilder) withOp(op ast.WithOp) *attr.Tree {
	switch op := op.(type) {
	case *ast.GenArrayOp:
		return b.g.MustTree("genarrayOp", op, b.exprList(op.Shape), b.expr(op.Body))
	case *ast.FoldOp:
		return b.g.MustTree("foldOp", op, b.expr(op.Init), b.expr(op.Body))
	}
	panic(fmt.Sprintf("sem: unknown with-op %T", op))
}

func (b *treeBuilder) suffix(clauses []ast.TransformClause) *attr.Tree {
	if len(clauses) == 0 {
		return b.g.MustTree("emptySuffix", nil)
	}
	kids := make([]*attr.Tree, len(clauses))
	for i, c := range clauses {
		kids[i] = b.clause(c)
	}
	return b.g.MustTree("transformSuffix", clauses, kids...)
}

func (b *treeBuilder) clause(c ast.TransformClause) *attr.Tree {
	switch c := c.(type) {
	case *ast.SplitClause:
		return b.g.MustTree("splitClause", c)
	case *ast.VectorizeClause:
		return b.g.MustTree("vectorizeClause", c)
	case *ast.ParallelizeClause:
		return b.g.MustTree("parallelizeClause", c)
	case *ast.ReorderClause:
		return b.g.MustTree("reorderClause", c)
	case *ast.TileClause:
		return b.g.MustTree("tileClause", c)
	case *ast.UnrollClause:
		return b.g.MustTree("unrollClause", c)
	}
	panic(fmt.Sprintf("sem: unknown transform clause %T", c))
}
