// Public entry point: compose the semantic attribute-grammar
// specifications and evaluate them over a parsed program.
package sem

import (
	"repro/internal/ast"
	"repro/internal/attr"
	"repro/internal/source"
)

// ComposeAG builds the composed semantic attribute grammar for the
// full language (host + matrix + transform + rc library bindings),
// wiring inferred results into info.
func ComposeAG(info *Info) (*attr.Grammar, error) {
	builtins := hostBuiltins()
	for name, f := range rcBuiltins() {
		builtins[name] = f
	}
	return attr.Compose(HostAG(info, builtins), MatrixAG(info), TransformAG(info), CilkAG(info))
}

// Check type-checks prog, recording diagnostics in diags and
// returning the analysis results. The returned Info is valid for
// downstream use only if diags has no errors.
func Check(prog *ast.Program, diags *source.Diagnostics) *Info {
	info := NewInfo()
	g, err := ComposeAG(info)
	if err != nil {
		diags.Errorf(prog.Span(), "internal error composing semantic specification: %v", err)
		return info
	}
	tree := BuildTree(g, prog)
	v, err := tree.SafeSyn("errs")
	if err != nil {
		diags.Errorf(prog.Span(), "internal error during semantic analysis: %v", err)
		return info
	}
	for _, d := range v.(errlist) {
		diags.Add(d)
	}
	return info
}
