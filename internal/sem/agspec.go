// The attribute-grammar specification of extended CMINUS semantics.
// The host spec declares the analysis attributes — env (inherited
// scope), envOut (statement scope flow), typ (expression types), errs
// (collected diagnostics), retType/inLoop/inIndex (context flags) —
// and equations for every host production. The matrix and transform
// specs contribute equations for their own productions (and, for the
// transform extension, its own loopIds/idsOut attributes on the
// matrix extension's WithSuffix nonterminal), mirroring exactly how
// the paper's Silver specifications compose. The MWDA in internal/attr
// validates each spec; see sem_test.go.
package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/attr"
	"repro/internal/types"
)

// Nonterminals of the semantic AG.
const (
	ntProgram    = "Program"
	ntDecl       = "Decl"
	ntStmt       = "Stmt"
	ntExpr       = "Expr"
	ntExprList   = "ExprList"
	ntIdxArgList = "IdxArgList"
	ntIdxArg     = "IdxArg"
	ntWithOp     = "WithOp"
	ntWithSuffix = "WithSuffix"
	ntClause     = "Clause"
)

// globalEnvVal is the value of the program's globalEnv attribute.
type globalEnvVal struct {
	scope *Scope
	errs  errlist
}

// idxInfo is the value of the argInfo attribute on index arguments.
type idxKind int

const (
	idxScalarK idxKind = iota
	idxRangeK
	idxAllK
	idxMaskK
	idxBadK
)

type idxInfo struct{ kind idxKind }

// builtinFn type-checks one builtin call.
type builtinFn func(args []*types.Type, call *ast.CallExpr) (*types.Type, errlist)

// hostBuiltins returns the host-language builtin table (§III's
// dimSize, readMatrix, writeMatrix plus simple printing).
func hostBuiltins() map[string]builtinFn {
	return map[string]builtinFn{
		"dimSize": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 2 || !args[0].IsMatrix() || args[1].Kind != types.Int {
				return types.InvalidT, errlist{errf(c, "dimSize expects (Matrix, int), got %s", typesStr(args))}
			}
			return types.IntT, nil
		},
		"readMatrix": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 1 || args[0].Kind != types.String {
				return types.InvalidT, errlist{errf(c, "readMatrix expects a file name string")}
			}
			return types.AnyMatT, nil
		},
		"writeMatrix": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 2 || args[0].Kind != types.String || !args[1].IsMatrix() {
				return types.InvalidT, errlist{errf(c, "writeMatrix expects (string, Matrix), got %s", typesStr(args))}
			}
			return types.VoidT, nil
		},
		"print": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 1 || !(args[0].IsScalar() || args[0].IsMatrix()) {
				return types.InvalidT, errlist{errf(c, "print expects one scalar or matrix argument")}
			}
			return types.VoidT, nil
		},
	}
}

// rcBuiltins returns the reference-counting extension's library
// bindings (the extension's semantics beyond its type syntax).
func rcBuiltins() map[string]builtinFn {
	return map[string]builtinFn{
		"rcnew": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 1 || args[0].Kind == types.Void || args[0].Kind == types.Invalid {
				return types.InvalidT, errlist{errf(c, "rcnew expects one value argument")}
			}
			return types.RcPtrOf(args[0]), nil
		},
		"rcget": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 1 || args[0].Kind != types.RcPtr {
				return types.InvalidT, errlist{errf(c, "rcget expects a refcounted pointer, got %s", typesStr(args))}
			}
			return args[0].Elem, nil
		},
		"rcset": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 2 || args[0].Kind != types.RcPtr {
				return types.InvalidT, errlist{errf(c, "rcset expects (refcounted pointer, value)")}
			}
			if !types.AssignableTo(args[1], args[0].Elem) {
				return types.InvalidT, errlist{errf(c, "rcset value %s is not assignable to %s", args[1], args[0].Elem)}
			}
			return types.VoidT, nil
		},
		"rcrelease": func(args []*types.Type, c *ast.CallExpr) (*types.Type, errlist) {
			if len(args) != 1 || args[0].Kind != types.RcPtr {
				return types.InvalidT, errlist{errf(c, "rcrelease expects a refcounted pointer, got %s", typesStr(args))}
			}
			return types.VoidT, nil
		},
	}
}

func typesStr(ts []*types.Type) string {
	s := "("
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + ")"
}

// --- helper accessors used inside equations ---

func env(t *attr.Tree) *Scope           { return t.Inh("env").(*Scope) }
func typOf(t *attr.Tree) *types.Type    { return t.Syn("typ").(*types.Type) }
func typsOf(t *attr.Tree) []*types.Type { return t.Syn("typs").([]*types.Type) }
func errsOf(t *attr.Tree) errlist       { return t.Syn("errs").(errlist) }

func resolveType(te ast.TypeExpr, at ast.Node) (*types.Type, errlist) {
	ty, err := types.FromAST(te)
	if err != nil {
		return types.InvalidT, errlist{errf(at, "%v", err)}
	}
	return ty, nil
}

// HostAG builds the host-language semantic specification. The info
// receives inferred types and signatures as attributes are evaluated;
// builtins is the library table (host builtins plus any extension
// contributions).
func HostAG(info *Info, builtins map[string]builtinFn) *attr.AGSpec {
	s := &attr.AGSpec{Name: ""}

	for _, nt := range []string{ntProgram, ntDecl, ntStmt, ntExpr, ntExprList, ntIdxArgList, ntIdxArg} {
		s.NTs = append(s.NTs, attr.NTDecl{Name: nt})
	}
	s.Attrs = []attr.AttrDecl{
		{Name: "env", Kind: attr.Inherited},
		{Name: "envOut", Kind: attr.Synthesized},
		{Name: "typ", Kind: attr.Synthesized},
		{Name: "typs", Kind: attr.Synthesized},
		{Name: "errs", Kind: attr.Synthesized},
		{Name: "ownErrs", Kind: attr.Synthesized},
		{Name: "retType", Kind: attr.Inherited},
		{Name: "inLoop", Kind: attr.Inherited},
		{Name: "inIndex", Kind: attr.Inherited},
		{Name: "globalEnv", Kind: attr.Synthesized},
		{Name: "argInfo", Kind: attr.Synthesized},
	}
	occ := func(a string, nts ...string) {
		for _, nt := range nts {
			s.Occurs = append(s.Occurs, attr.Occurs{Attr: a, NT: nt})
		}
	}
	occ("env", ntDecl, ntStmt, ntExpr, ntExprList, ntIdxArgList, ntIdxArg)
	occ("envOut", ntStmt)
	occ("typ", ntExpr)
	occ("typs", ntExprList)
	occ("errs", ntProgram, ntDecl, ntStmt, ntExpr, ntExprList, ntIdxArgList, ntIdxArg)
	occ("ownErrs", ntProgram, ntDecl, ntStmt, ntExpr, ntExprList, ntIdxArgList, ntIdxArg)
	occ("retType", ntStmt)
	occ("inLoop", ntStmt)
	occ("inIndex", ntExpr, ntExprList)
	occ("globalEnv", ntProgram)
	occ("argInfo", ntIdxArg)

	p := func(name, lhs string, variadic bool, kids ...string) {
		s.Prods = append(s.Prods, attr.ProdDecl{Name: name, LHS: lhs, ChildNTs: kids, Variadic: variadic})
	}
	p("program", ntProgram, true, ntDecl)
	p("funcDecl", ntDecl, false, ntStmt)
	p("globalVar", ntDecl, false)
	p("globalVarInit", ntDecl, false, ntExpr)
	p("block", ntStmt, true, ntStmt)
	p("declStmt", ntStmt, false)
	p("declStmtInit", ntStmt, false, ntExpr)
	p("assign", ntStmt, false, ntExprList, ntExpr)
	p("ifStmt", ntStmt, false, ntExpr, ntStmt)
	p("ifElseStmt", ntStmt, false, ntExpr, ntStmt, ntStmt)
	p("whileStmt", ntStmt, false, ntExpr, ntStmt)
	p("forStmt", ntStmt, false, ntStmt, ntExpr, ntStmt, ntStmt)
	p("emptyStmt", ntStmt, false)
	p("returnStmt", ntStmt, false, ntExpr)
	p("returnVoid", ntStmt, false)
	p("exprStmt", ntStmt, false, ntExpr)
	p("breakStmt", ntStmt, false)
	p("continueStmt", ntStmt, false)
	p("intLit", ntExpr, false)
	p("floatLit", ntExpr, false)
	p("boolLit", ntExpr, false)
	p("strLit", ntExpr, false)
	p("ident", ntExpr, false)
	p("binary", ntExpr, false, ntExpr, ntExpr)
	p("unary", ntExpr, false, ntExpr)
	p("call", ntExpr, false, ntExprList)
	p("cast", ntExpr, false, ntExpr)
	p("index", ntExpr, false, ntExpr, ntIdxArgList)
	p("endExpr", ntExpr, false)
	p("rangeExpr", ntExpr, false, ntExpr, ntExpr)
	p("tupleExpr", ntExpr, false, ntExprList)
	p("exprList", ntExprList, true, ntExpr)
	p("idxArgList", ntIdxArgList, true, ntIdxArg)
	p("idxScalar", ntIdxArg, false, ntExpr)
	p("idxRange", ntIdxArg, false, ntExpr, ntExpr)
	p("idxAll", ntIdxArg, false)

	syn := func(prod, attrName string, f func(t *attr.Tree) any) {
		s.SynEqs = append(s.SynEqs, attr.SynEq{Prod: prod, Attr: attrName, F: f})
	}
	inh := func(prod string, child int, attrName string, f func(p *attr.Tree, c int) any) {
		s.InhEqs = append(s.InhEqs, attr.InhEq{Prod: prod, Child: child, Attr: attrName, F: f})
	}
	inhCopy := func(prod string, child int, attrName string) {
		inh(prod, child, attrName, func(p *attr.Tree, c int) any { return p.Inh(attrName) })
	}
	inhConst := func(prod string, child int, attrName string, v any) {
		inh(prod, child, attrName, func(p *attr.Tree, c int) any { return v })
	}
	// typ equation wrapper: records the inferred type in info.Types.
	typEq := func(prod string, f func(t *attr.Tree) *types.Type) {
		syn(prod, "typ", func(t *attr.Tree) any {
			ty := f(t)
			if e, ok := t.Value.(ast.Expr); ok {
				info.Types[e] = ty
			}
			return ty
		})
	}
	noErrs := func(prods ...string) {
		for _, pr := range prods {
			syn(pr, "ownErrs", func(t *attr.Tree) any { return errlist(nil) })
		}
	}

	// --- program ---
	syn("program", "globalEnv", func(t *attr.Tree) any {
		var errs errlist
		sc := (*Scope)(nil).Push()
		seen := map[string]bool{}
		for i := 0; i < t.NumChildren(); i++ {
			switch d := t.Child(i).Value.(type) {
			case *ast.FuncDecl:
				ret, e := resolveType(d.Ret, d)
				errs = append(errs, e...)
				params := make([]*types.Type, len(d.Params))
				for j, pa := range d.Params {
					pt, e := resolveType(pa.Type, pa)
					errs = append(errs, e...)
					params[j] = pt
				}
				if seen[d.Name] {
					errs = append(errs, errf(d, "redeclaration of %q", d.Name))
					continue
				}
				seen[d.Name] = true
				ft := types.FuncOf(ret, params...)
				sc = sc.Bind(d.Name, ft, d)
				info.Funcs[d.Name] = &FuncSig{Name: d.Name, Type: ft, Decl: d}
			case *ast.GlobalVarDecl:
				ty, e := resolveType(d.Type, d)
				errs = append(errs, e...)
				if seen[d.Name] {
					errs = append(errs, errf(d, "redeclaration of %q", d.Name))
					continue
				}
				if ty.Kind == types.Void {
					errs = append(errs, errf(d, "variable %q cannot have void type", d.Name))
					ty = types.InvalidT
				}
				seen[d.Name] = true
				sc = sc.Bind(d.Name, ty, d)
				info.GlobalTypes[d.Name] = ty
			}
		}
		return globalEnvVal{scope: sc, errs: errs}
	})
	syn("program", "ownErrs", func(t *attr.Tree) any {
		return t.Syn("globalEnv").(globalEnvVal).errs
	})
	inh("program", -1, "env", func(p *attr.Tree, c int) any {
		return p.Syn("globalEnv").(globalEnvVal).scope
	})

	// --- declarations ---
	syn("funcDecl", "ownErrs", func(t *attr.Tree) any { return errlist(nil) })
	inh("funcDecl", 0, "env", func(p *attr.Tree, c int) any {
		d := p.Value.(*ast.FuncDecl)
		sc := env(p).Push()
		seen := map[string]bool{}
		for _, pa := range d.Params {
			pt, _ := resolveType(pa.Type, pa)
			if seen[pa.Name] {
				continue // duplicate params reported below via body? report here is awkward; keep first
			}
			seen[pa.Name] = true
			sc = sc.Bind(pa.Name, pt, pa)
		}
		return sc
	})
	inh("funcDecl", 0, "retType", func(p *attr.Tree, c int) any {
		d := p.Value.(*ast.FuncDecl)
		ret, _ := resolveType(d.Ret, d)
		return ret
	})
	inhConst("funcDecl", 0, "inLoop", false)

	noErrs("globalVar")
	syn("globalVarInit", "ownErrs", func(t *attr.Tree) any {
		d := t.Value.(*ast.GlobalVarDecl)
		ty, _ := resolveType(d.Type, d)
		it := typOf(t.Child(0))
		if !types.AssignableTo(it, ty) {
			return errlist{errf(d, "cannot initialize %q of type %s with %s", d.Name, ty, it)}
		}
		return errlist(nil)
	})
	inhCopy("globalVarInit", 0, "env")
	inhConst("globalVarInit", 0, "inIndex", false)

	// --- statements ---
	noErrs("block", "emptyStmt", "exprStmt")
	syn("block", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inh("block", -1, "env", func(p *attr.Tree, c int) any {
		if c == 0 {
			return env(p).Push()
		}
		return p.Child(c - 1).Syn("envOut")
	})
	inhCopy("block", -1, "retType")
	inhCopy("block", -1, "inLoop")

	declCheck := func(t *attr.Tree) (string, *types.Type, errlist) {
		d := t.Value.(*ast.DeclStmt)
		ty, errs := resolveType(d.Type, d)
		if ty.Kind == types.Void {
			errs = append(errs, errf(d, "variable %q cannot have void type", d.Name))
			ty = types.InvalidT
		}
		if env(t).DeclaredInBlock(d.Name) {
			errs = append(errs, errf(d, "%q is already declared in this block", d.Name))
		}
		return d.Name, ty, errs
	}
	syn("declStmt", "ownErrs", func(t *attr.Tree) any {
		_, _, errs := declCheck(t)
		return errs
	})
	syn("declStmt", "envOut", func(t *attr.Tree) any {
		name, ty, _ := declCheck(t)
		return env(t).Bind(name, ty, t.Value.(ast.Node))
	})
	syn("declStmtInit", "ownErrs", func(t *attr.Tree) any {
		d := t.Value.(*ast.DeclStmt)
		_, ty, errs := declCheck(t)
		it := typOf(t.Child(0))
		if !types.AssignableTo(it, ty) {
			errs = append(errs, errf(d, "cannot initialize %q of type %s with %s", d.Name, ty, it))
		}
		return errs
	})
	syn("declStmtInit", "envOut", func(t *attr.Tree) any {
		name, ty, _ := declCheck(t)
		return env(t).Bind(name, ty, t.Value.(ast.Node))
	})
	inhCopy("declStmtInit", 0, "env")
	inhConst("declStmtInit", 0, "inIndex", false)

	syn("assign", "ownErrs", func(t *attr.Tree) any {
		a := t.Value.(*ast.AssignStmt)
		var errs errlist
		lhsTypes := typsOf(t.Child(0))
		for _, l := range a.LHS {
			switch l.(type) {
			case *ast.Ident, *ast.IndexExpr:
			default:
				errs = append(errs, errf(l, "cannot assign to %s", ast.ExprString(l)))
			}
		}
		rhs := typOf(t.Child(1))
		if len(a.LHS) > 1 {
			// tuple destructuring (§III-B)
			if rhs.Kind != types.Tuple {
				errs = append(errs, errf(a, "destructuring assignment requires a tuple value, got %s", rhs))
				return errs
			}
			if len(rhs.Elems) != len(a.LHS) {
				errs = append(errs, errf(a, "cannot destructure %d-tuple into %d targets", len(rhs.Elems), len(a.LHS)))
				return errs
			}
			for i, lt := range lhsTypes {
				if !types.AssignableTo(rhs.Elems[i], lt) {
					errs = append(errs, errf(a.LHS[i], "cannot assign %s to %s", rhs.Elems[i], lt))
				}
			}
			return errs
		}
		lt := lhsTypes[0]
		if lt.Kind != types.Invalid && !types.AssignableTo(rhs, lt) {
			// Indexed stores of scalars into matrix slices are checked
			// elementwise: scores[b:i] = <Matrix float<1>> is fine, and
			// m[i, j] = 2 stores a scalar.
			errs = append(errs, errf(a, "cannot assign %s to %s", rhs, lt))
		}
		return errs
	})
	syn("assign", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("assign", -1, "env")
	inhConst("assign", 0, "inIndex", false)
	inhConst("assign", 1, "inIndex", false)

	condCheck := func(name string) func(t *attr.Tree) any {
		return func(t *attr.Tree) any {
			ct := typOf(t.Child(0))
			if ct.Kind != types.Bool && ct.Kind != types.Invalid {
				return errlist{errf(t.Value.(ast.Node), "%s condition must be bool, got %s", name, ct)}
			}
			return errlist(nil)
		}
	}
	syn("ifStmt", "ownErrs", condCheck("if"))
	syn("ifStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("ifStmt", -1, "env")
	inhConst("ifStmt", 0, "inIndex", false)
	inhCopy("ifStmt", 1, "retType")
	inhCopy("ifStmt", 1, "inLoop")

	syn("ifElseStmt", "ownErrs", condCheck("if"))
	syn("ifElseStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("ifElseStmt", -1, "env")
	inhConst("ifElseStmt", 0, "inIndex", false)
	inhCopy("ifElseStmt", 1, "retType")
	inhCopy("ifElseStmt", 1, "inLoop")
	inhCopy("ifElseStmt", 2, "retType")
	inhCopy("ifElseStmt", 2, "inLoop")

	syn("whileStmt", "ownErrs", condCheck("while"))
	syn("whileStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("whileStmt", -1, "env")
	inhConst("whileStmt", 0, "inIndex", false)
	inhCopy("whileStmt", 1, "retType")
	inhConst("whileStmt", 1, "inLoop", true)

	syn("forStmt", "ownErrs", func(t *attr.Tree) any {
		ct := typOf(t.Child(1))
		if ct.Kind != types.Bool && ct.Kind != types.Invalid {
			return errlist{errf(t.Value.(ast.Node), "for condition must be bool, got %s", ct)}
		}
		return errlist(nil)
	})
	syn("forStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inh("forStmt", 0, "env", func(p *attr.Tree, c int) any { return env(p).Push() })
	inh("forStmt", 1, "env", func(p *attr.Tree, c int) any { return p.Child(0).Syn("envOut") })
	inh("forStmt", 2, "env", func(p *attr.Tree, c int) any { return p.Child(0).Syn("envOut") })
	inh("forStmt", 3, "env", func(p *attr.Tree, c int) any { return p.Child(0).Syn("envOut") })
	inhConst("forStmt", 1, "inIndex", false)
	inhCopy("forStmt", 0, "retType")
	inhCopy("forStmt", 2, "retType")
	inhCopy("forStmt", 3, "retType")
	inhConst("forStmt", 0, "inLoop", false)
	inhConst("forStmt", 2, "inLoop", true)
	inhConst("forStmt", 3, "inLoop", true)

	syn("emptyStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })

	syn("returnStmt", "ownErrs", func(t *attr.Tree) any {
		ret := t.Inh("retType").(*types.Type)
		vt := typOf(t.Child(0))
		if ret.Kind == types.Void {
			return errlist{errf(t.Value.(ast.Node), "void function cannot return a value")}
		}
		if !types.AssignableTo(vt, ret) {
			return errlist{errf(t.Value.(ast.Node), "cannot return %s from a function returning %s", vt, ret)}
		}
		return errlist(nil)
	})
	syn("returnStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("returnStmt", 0, "env")
	inhConst("returnStmt", 0, "inIndex", false)

	syn("returnVoid", "ownErrs", func(t *attr.Tree) any {
		ret := t.Inh("retType").(*types.Type)
		if ret.Kind != types.Void {
			return errlist{errf(t.Value.(ast.Node), "missing return value in function returning %s", ret)}
		}
		return errlist(nil)
	})
	syn("returnVoid", "envOut", func(t *attr.Tree) any { return t.Inh("env") })

	syn("exprStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inhCopy("exprStmt", 0, "env")
	inhConst("exprStmt", 0, "inIndex", false)

	loopOnly := func(word string) func(t *attr.Tree) any {
		return func(t *attr.Tree) any {
			if !t.Inh("inLoop").(bool) {
				return errlist{errf(t.Value.(ast.Node), "%s outside a loop", word)}
			}
			return errlist(nil)
		}
	}
	syn("breakStmt", "ownErrs", loopOnly("break"))
	syn("breakStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	syn("continueStmt", "ownErrs", loopOnly("continue"))
	syn("continueStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })

	// --- expressions ---
	noErrs("intLit", "floatLit", "boolLit", "strLit", "exprList", "idxArgList", "tupleExpr")
	typEq("intLit", func(t *attr.Tree) *types.Type { return types.IntT })
	typEq("floatLit", func(t *attr.Tree) *types.Type { return types.FloatT })
	typEq("boolLit", func(t *attr.Tree) *types.Type { return types.BoolT })
	typEq("strLit", func(t *attr.Tree) *types.Type { return types.StringT })

	typEq("ident", func(t *attr.Tree) *types.Type {
		id := t.Value.(*ast.Ident)
		if sym := env(t).Lookup(id.Name); sym != nil {
			return sym.Type
		}
		return types.InvalidT
	})
	syn("ident", "ownErrs", func(t *attr.Tree) any {
		id := t.Value.(*ast.Ident)
		if env(t).Lookup(id.Name) == nil {
			return errlist{errf(id, "undeclared variable %q", id.Name)}
		}
		return errlist(nil)
	})

	typEq("binary", func(t *attr.Tree) *types.Type {
		e := t.Value.(*ast.BinaryExpr)
		res, _ := types.BinaryResult(e.Op, typOf(t.Child(0)), typOf(t.Child(1)))
		return res
	})
	syn("binary", "ownErrs", func(t *attr.Tree) any {
		e := t.Value.(*ast.BinaryExpr)
		if _, err := types.BinaryResult(e.Op, typOf(t.Child(0)), typOf(t.Child(1))); err != nil {
			return errlist{errf(e, "%v", err)}
		}
		return errlist(nil)
	})
	inhCopy("binary", -1, "env")
	inhCopy("binary", 0, "inIndex")
	inhCopy("binary", 1, "inIndex")

	typEq("unary", func(t *attr.Tree) *types.Type {
		e := t.Value.(*ast.UnaryExpr)
		res, _ := types.UnaryResult(e.Op, typOf(t.Child(0)))
		return res
	})
	syn("unary", "ownErrs", func(t *attr.Tree) any {
		e := t.Value.(*ast.UnaryExpr)
		if _, err := types.UnaryResult(e.Op, typOf(t.Child(0))); err != nil {
			return errlist{errf(e, "%v", err)}
		}
		return errlist(nil)
	})
	inhCopy("unary", 0, "env")
	inhCopy("unary", 0, "inIndex")

	callResolve := func(t *attr.Tree) (*types.Type, errlist) {
		e := t.Value.(*ast.CallExpr)
		args := typsOf(t.Child(0))
		if sym := env(t).Lookup(e.Fun); sym != nil {
			ft := sym.Type
			if ft.Kind != types.Func {
				return types.InvalidT, errlist{errf(e, "%q is not a function", e.Fun)}
			}
			if len(args) != len(ft.Params) {
				return types.InvalidT, errlist{errf(e, "%q expects %d argument(s), got %d", e.Fun, len(ft.Params), len(args))}
			}
			var errs errlist
			for i, at := range args {
				if !types.AssignableTo(at, ft.Params[i]) {
					errs = append(errs, errf(e.Args[i], "argument %d of %q: cannot use %s as %s", i+1, e.Fun, at, ft.Params[i]))
				}
			}
			return ft.Ret, errs
		}
		if bf, ok := builtins[e.Fun]; ok {
			return bf(args, e)
		}
		return types.InvalidT, errlist{errf(e, "undeclared function %q", e.Fun)}
	}
	typEq("call", func(t *attr.Tree) *types.Type { ty, _ := callResolve(t); return ty })
	syn("call", "ownErrs", func(t *attr.Tree) any { _, errs := callResolve(t); return errs })
	inhCopy("call", 0, "env")
	inhConst("call", 0, "inIndex", false)

	typEq("cast", func(t *attr.Tree) *types.Type {
		e := t.Value.(*ast.CastExpr)
		switch e.To {
		case ast.PrimInt:
			return types.IntT
		case ast.PrimFloat:
			return types.FloatT
		case ast.PrimBool:
			return types.BoolT
		}
		return types.InvalidT
	})
	syn("cast", "ownErrs", func(t *attr.Tree) any {
		e := t.Value.(*ast.CastExpr)
		xt := typOf(t.Child(0))
		if xt.Kind == types.Invalid {
			return errlist(nil)
		}
		if !xt.IsNumeric() && xt.Kind != types.Bool {
			return errlist{errf(e, "cannot cast %s to %s", xt, e.To)}
		}
		if e.To == ast.PrimVoid || e.To == ast.PrimString {
			return errlist{errf(e, "cannot cast to %s", e.To)}
		}
		return errlist(nil)
	})
	inhCopy("cast", 0, "env")
	inhCopy("cast", 0, "inIndex")

	indexResolve := func(t *attr.Tree) (*types.Type, errlist) {
		e := t.Value.(*ast.IndexExpr)
		base := typOf(t.Child(0))
		if base.Kind == types.Invalid {
			return types.InvalidT, nil
		}
		if base.Kind == types.AnyMatrix {
			return types.InvalidT, errlist{errf(e, "cannot index an unresolved matrix; assign it to a declared Matrix variable first")}
		}
		if base.Kind != types.Matrix {
			return types.InvalidT, errlist{errf(e, "cannot index %s", base)}
		}
		argsT := t.Child(1)
		if argsT.NumChildren() != base.Rank {
			return types.InvalidT, errlist{errf(e, "matrix of rank %d requires %d index expression(s), got %d",
				base.Rank, base.Rank, argsT.NumChildren())}
		}
		kept := 0
		for i := 0; i < argsT.NumChildren(); i++ {
			ai := argsT.Child(i).Syn("argInfo").(idxInfo)
			switch ai.kind {
			case idxRangeK, idxAllK, idxMaskK:
				kept++
			case idxBadK:
				return types.InvalidT, nil // error reported at the arg
			}
		}
		if kept == 0 {
			return base.Elem, nil
		}
		return types.MatrixOf(base.Elem, kept), nil
	}
	typEq("index", func(t *attr.Tree) *types.Type { ty, _ := indexResolve(t); return ty })
	syn("index", "ownErrs", func(t *attr.Tree) any { _, errs := indexResolve(t); return errs })
	inhCopy("index", 0, "env")
	inhConst("index", 0, "inIndex", false)
	inhCopy("index", 1, "env")

	typEq("endExpr", func(t *attr.Tree) *types.Type { return types.IntT })
	syn("endExpr", "ownErrs", func(t *attr.Tree) any {
		if !t.Inh("inIndex").(bool) {
			return errlist{errf(t.Value.(ast.Node), "'end' is only valid inside matrix index expressions")}
		}
		return errlist(nil)
	})

	typEq("rangeExpr", func(t *attr.Tree) *types.Type { return types.MatrixOf(types.IntT, 1) })
	syn("rangeExpr", "ownErrs", func(t *attr.Tree) any {
		var errs errlist
		for i := 0; i < 2; i++ {
			if ty := typOf(t.Child(i)); ty.Kind != types.Int && ty.Kind != types.Invalid {
				errs = append(errs, errf(t.Value.(ast.Node), "range bound must be int, got %s", ty))
			}
		}
		return errs
	})
	inhCopy("rangeExpr", -1, "env")
	inhCopy("rangeExpr", 0, "inIndex")
	inhCopy("rangeExpr", 1, "inIndex")

	typEq("tupleExpr", func(t *attr.Tree) *types.Type {
		return types.TupleOf(typsOf(t.Child(0))...)
	})
	inhCopy("tupleExpr", 0, "env")
	inhConst("tupleExpr", 0, "inIndex", false)

	syn("exprList", "typs", func(t *attr.Tree) any {
		out := make([]*types.Type, t.NumChildren())
		for i := range out {
			out[i] = typOf(t.Child(i))
		}
		return out
	})
	inhCopy("exprList", -1, "env")
	inh("exprList", -1, "inIndex", func(p *attr.Tree, c int) any { return p.Inh("inIndex") })

	inhCopy("idxArgList", -1, "env")

	syn("idxScalar", "argInfo", func(t *attr.Tree) any {
		ty := typOf(t.Child(0))
		switch {
		case ty.Kind == types.Int:
			return idxInfo{idxScalarK}
		case ty.Kind == types.Matrix && ty.Elem.Kind == types.Bool && ty.Rank == 1:
			return idxInfo{idxMaskK} // logical indexing, §III-A.3(d)
		case ty.Kind == types.Invalid:
			return idxInfo{idxBadK}
		}
		return idxInfo{idxBadK}
	})
	syn("idxScalar", "ownErrs", func(t *attr.Tree) any {
		ty := typOf(t.Child(0))
		if ty.Kind == types.Int || ty.Kind == types.Invalid {
			return errlist(nil)
		}
		if ty.Kind == types.Matrix && ty.Elem.Kind == types.Bool && ty.Rank == 1 {
			return errlist(nil)
		}
		return errlist{errf(t.Value.(ast.Node), "index must be an int or a rank-1 bool matrix (logical index), got %s", ty)}
	})
	inhCopy("idxScalar", 0, "env")
	inhConst("idxScalar", 0, "inIndex", true)

	syn("idxRange", "argInfo", func(t *attr.Tree) any {
		lo, hi := typOf(t.Child(0)), typOf(t.Child(1))
		if (lo.Kind == types.Int || lo.Kind == types.Invalid) && (hi.Kind == types.Int || hi.Kind == types.Invalid) {
			return idxInfo{idxRangeK}
		}
		return idxInfo{idxBadK}
	})
	syn("idxRange", "ownErrs", func(t *attr.Tree) any {
		var errs errlist
		for i := 0; i < 2; i++ {
			if ty := typOf(t.Child(i)); ty.Kind != types.Int && ty.Kind != types.Invalid {
				errs = append(errs, errf(t.Value.(ast.Node), "range index bound must be int, got %s", ty))
			}
		}
		return errs
	})
	inhCopy("idxRange", -1, "env")
	inhConst("idxRange", 0, "inIndex", true)
	inhConst("idxRange", 1, "inIndex", true)

	syn("idxAll", "argInfo", func(t *attr.Tree) any { return idxInfo{idxAllK} })
	noErrs("idxAll")

	addErrsProjections(s, info)
	return s
}

// addErrsProjections generates, for every production in the spec, the
// "errs" equation: own errors plus the concatenation of all children's
// errors. For expression-valued productions it also forces "typ" so
// that Info.Types is fully populated.
func addErrsProjections(s *attr.AGSpec, info *Info) {
	hasTyp := func(lhs string) bool { return lhs == ntExpr || lhs == ntWithOp }
	for _, p := range s.Prods {
		prod := p
		s.SynEqs = append(s.SynEqs, attr.SynEq{Prod: prod.Name, Attr: "errs", Owner: s.Name,
			F: func(t *attr.Tree) any {
				if hasTyp(prod.LHS) {
					t.Syn("typ")
				}
				out := append(errlist(nil), t.Syn("ownErrs").(errlist)...)
				for i := 0; i < t.NumChildren(); i++ {
					out = append(out, t.Child(i).Syn("errs").(errlist)...)
				}
				return out
			}})
	}
	_ = info
}

// fmtNames joins names for error messages.
func fmtNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

var _ = fmt.Sprintf
