// The Cilk extension's semantic attribute-grammar fragment (§VIII
// future work, implemented): spawn statements must spawn a call to a
// user-defined function; a spawn with a target must name a declared
// variable that can receive the call's result; sync is only
// meaningful inside a function (always true here). The extension owns
// only its own productions and equips them with equations for the
// host's analysis attributes — passing the MWDA like the others.
package sem

import (
	"repro/internal/ast"
	"repro/internal/attr"
	"repro/internal/types"
)

// OwnerCilkSem tags the Cilk semantic spec.
const OwnerCilkSem = "cilk"

// CilkAG builds the Cilk extension's semantic specification.
func CilkAG(info *Info) *attr.AGSpec {
	s := &attr.AGSpec{Name: OwnerCilkSem}
	p := func(name string, kids ...string) {
		s.Prods = append(s.Prods, attr.ProdDecl{Name: name, LHS: ntStmt,
			ChildNTs: kids, Owner: OwnerCilkSem})
	}
	p("spawnStmt", ntExpr)
	p("syncStmt")

	syn := func(prod, attrName string, f func(t *attr.Tree) any) {
		s.SynEqs = append(s.SynEqs, attr.SynEq{Prod: prod, Attr: attrName, Owner: OwnerCilkSem, F: f})
	}
	inh := func(prod string, child int, attrName string, f func(p *attr.Tree, c int) any) {
		s.InhEqs = append(s.InhEqs, attr.InhEq{Prod: prod, Child: child, Attr: attrName,
			Owner: OwnerCilkSem, F: f})
	}

	syn("spawnStmt", "ownErrs", func(t *attr.Tree) any {
		sp := t.Value.(*ast.SpawnStmt)
		var errs errlist
		call, isCall := sp.Call.(*ast.CallExpr)
		if !isCall {
			errs = append(errs, errf(sp, "spawn requires a function call, got %s", ast.ExprString(sp.Call)))
			return errs
		}
		// The called function must be user-defined (builtins are not
		// spawnable tasks).
		sym := env(t).Lookup(call.Fun)
		if sym == nil || sym.Type.Kind != types.Func {
			errs = append(errs, errf(sp, "spawn requires a user-defined function, %q is not one", call.Fun))
			return errs
		}
		ct := typOf(t.Child(0))
		if sp.Target == "" {
			return errs
		}
		tgt := env(t).Lookup(sp.Target)
		if tgt == nil {
			errs = append(errs, errf(sp, "spawn target %q is not declared", sp.Target))
			return errs
		}
		if ct.Kind == types.Void {
			errs = append(errs, errf(sp, "spawned function returns void; drop the target variable"))
			return errs
		}
		if !types.AssignableTo(ct, tgt.Type) {
			errs = append(errs, errf(sp, "cannot assign spawned %s to %q of type %s", ct, sp.Target, tgt.Type))
		}
		return errs
	})
	syn("spawnStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })
	inh("spawnStmt", 0, "env", func(p *attr.Tree, c int) any { return p.Inh("env") })
	inh("spawnStmt", 0, "inIndex", func(p *attr.Tree, c int) any { return false })

	syn("syncStmt", "ownErrs", func(t *attr.Tree) any { return errlist(nil) })
	syn("syncStmt", "envOut", func(t *attr.Tree) any { return t.Inh("env") })

	addErrsProjections(s, info)
	return s
}
