// Package sem implements the semantic analysis of extended CMINUS —
// name resolution, the overloaded-operator type checking of §III-A,
// the with-loop / matrixMap / transform checks, and the tuple and
// reference-counting rules — specified as a composable attribute
// grammar (internal/attr) in the style of Silver, exactly as the paper
// describes: the host language and each extension contribute attribute
// equations, and the modular well-definedness analysis validates each
// extension's spec (see sem_test.go).
package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// Symbol is one declared name.
type Symbol struct {
	Name string
	Type *types.Type
	Node ast.Node
}

// Scope is a persistent (immutable, linked) lexical environment.
// Bind returns a new scope; Push opens a nested block level used for
// duplicate-declaration detection.
type Scope struct {
	parent *Scope
	sym    *Symbol // nil for block markers
	depth  int
}

// Push opens a new block level.
func (s *Scope) Push() *Scope {
	d := 0
	if s != nil {
		d = s.depth + 1
	}
	return &Scope{parent: s, depth: d}
}

// Bind adds a symbol at the current level.
func (s *Scope) Bind(name string, t *types.Type, node ast.Node) *Scope {
	d := 0
	if s != nil {
		d = s.depth
	}
	return &Scope{parent: s, sym: &Symbol{Name: name, Type: t, Node: node}, depth: d}
}

// Lookup finds the nearest binding of name, or nil.
func (s *Scope) Lookup(name string) *Symbol {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.sym != nil && cur.sym.Name == name {
			return cur.sym
		}
	}
	return nil
}

// DeclaredInBlock reports whether name is already bound at the
// current block level (for duplicate-declaration errors).
func (s *Scope) DeclaredInBlock(name string) bool {
	if s == nil {
		return false
	}
	d := s.depth
	for cur := s; cur != nil && cur.depth == d; cur = cur.parent {
		if cur.sym != nil && cur.sym.Name == name {
			return true
		}
	}
	return false
}

// FuncSig is a user-defined function's signature.
type FuncSig struct {
	Name string
	Type *types.Type // Kind Func
	Decl *ast.FuncDecl
}

// Info is the result of semantic analysis, consumed by the
// interpreter and the code generator.
type Info struct {
	// Types maps every analyzed expression to its inferred type.
	Types map[ast.Expr]*types.Type
	// Funcs maps function names to signatures.
	Funcs map[string]*FuncSig
	// GlobalTypes maps global variable names to their types.
	GlobalTypes map[string]*types.Type
}

// NewInfo allocates an empty Info.
func NewInfo() *Info {
	return &Info{
		Types:       map[ast.Expr]*types.Type{},
		Funcs:       map[string]*FuncSig{},
		GlobalTypes: map[string]*types.Type{},
	}
}

// TypeOf returns the recorded type of e (InvalidT if unrecorded).
func (in *Info) TypeOf(e ast.Expr) *types.Type {
	if t, ok := in.Types[e]; ok {
		return t
	}
	return types.InvalidT
}

// errlist is the value of the "errs" synthesized attribute.
type errlist []source.Diagnostic

func errf(n ast.Node, format string, args ...any) source.Diagnostic {
	var span source.Span
	if n != nil {
		span = n.Span()
	}
	d := source.Diagnostics{}
	d.Errorf(span, format, args...)
	return d.All()[0]
}
