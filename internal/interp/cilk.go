// Runtime support for the Cilk extension (§VIII): spawn evaluates the
// call's arguments eagerly, takes references on matrix arguments, and
// runs the callee in its own goroutine; sync joins the enclosing
// function's outstanding spawns, assigning targets and propagating the
// first error. Every function performs an implicit sync before
// returning, so spawned work never outlives its parent frame — the
// Cilk discipline.
package interp

import (
	"repro/internal/ast"
)

// spawnFuture is one outstanding spawned call.
type spawnFuture struct {
	done   chan struct{}
	val    any
	err    error
	target *binding
	node   ast.Node
	gctx   *ctx // holds the escape reference of val until consumed
	args   []any
}

func (c *ctx) execSpawn(s *ast.SpawnStmt) error {
	call, ok := s.Call.(*ast.CallExpr)
	if !ok {
		return rerr(s, "spawn requires a function call")
	}
	sig, ok := c.i.info.Funcs[call.Fun]
	if !ok {
		return rerr(s, "spawn requires a user-defined function, %q is not one", call.Fun)
	}
	args := make([]any, len(call.Args))
	for k, a := range call.Args {
		v, err := c.evalExpr(a)
		if err != nil {
			return err
		}
		// The goroutine owns a reference to each argument until the
		// call completes (the caller may reassign its variables in the
		// meantime).
		c.bindValue(v)
		args[k] = v
	}
	var target *binding
	if s.Target != "" {
		b, found := c.frame.lookup(s.Target)
		if !found {
			return rerr(s, "spawn target %q is not declared", s.Target)
		}
		target = b
	}
	fut := &spawnFuture{done: make(chan struct{}), target: target, node: s, args: args}
	gctx := &ctx{i: c.i, pool: nil, depth: c.depth}
	fut.gctx = gctx
	go func() {
		defer close(fut.done)
		// A panic in spawned work must not kill the process — this
		// goroutine is outside both the pool's recovery and the
		// interpreter's top-level recover. Convert it to a trap the
		// joining sync propagates like any other spawn failure.
		defer func() {
			if r := recover(); r != nil {
				fut.err = recoveredError(s, r)
			}
		}()
		fut.val, fut.err = gctx.callFunction(sig.Decl, args, s)
	}()
	c.futures = append(c.futures, fut)
	return nil
}

// syncFutures joins all outstanding spawns of this context (the
// semantics of `sync;` and of the implicit sync at function exit).
func (c *ctx) syncFutures() error {
	var firstErr error
	for _, fut := range c.futures {
		<-fut.done
		if fut.err != nil {
			if firstErr == nil {
				firstErr = fut.err
			}
		} else if fut.target != nil {
			cv, err := c.coerceToType(fut.node, fut.target.ty, fut.val)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				c.bindValue(cv)
				c.releaseValue(fut.target.v)
				fut.target.v = cv
			}
		}
		// Release the call's escaped result and the argument
		// references taken at spawn time.
		fut.gctx.releasePending(0)
		for _, a := range fut.args {
			c.releaseValue(a)
		}
	}
	c.futures = nil
	return firstErr
}
