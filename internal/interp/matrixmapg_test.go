package interp

import (
	"testing"

	"repro/internal/matrix"
)

// matrixMapG (§III-A.5's generalization, implemented): the mapped
// function may shrink or grow the mapped dimensions.
func TestMatrixMapGShrinks(t *testing.T) {
	data := matrix.New(matrix.Float, 3, 4, 8)
	for k := range data.Floats() {
		data.Floats()[k] = float64(k)
	}
	files := map[string]*matrix.Matrix{"d.data": data}
	mustRun(t, `
Matrix float <1> firstHalf(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return ts[0 : n / 2 - 1];
}
int main() {
	Matrix float <3> d = readMatrix("d.data");
	Matrix float <3> out;
	out = matrixMapG(firstHalf, d, [2]);
	writeMatrix("out.data", out);
	return 0;
}`, Options{Files: files, Threads: 2})
	out := files["out.data"]
	sh := out.Shape()
	if sh[0] != 3 || sh[1] != 4 || sh[2] != 4 {
		t.Fatalf("out shape = %v, want [3 4 4]", sh)
	}
	// out[i,j,k] == d[i,j,k] for k < 4
	got, _ := out.At(2, 3, 3)
	want, _ := data.At(2, 3, 3)
	if got != want {
		t.Fatalf("out[2,3,3] = %v, want %v", got, want)
	}
}

func TestMatrixMapGGrows(t *testing.T) {
	data := matrix.New(matrix.Float, 2, 3)
	for k := range data.Floats() {
		data.Floats()[k] = float64(k + 1)
	}
	files := map[string]*matrix.Matrix{"d.data": data}
	mustRun(t, `
// duplicate each row: [a b c] -> [a b c a b c]
Matrix float <1> twice(Matrix float <1> row) {
	int n = dimSize(row, 0);
	Matrix float <1> out = init(Matrix float <1>, n * 2);
	out[0 : n - 1] = row;
	out[n : 2 * n - 1] = row;
	return out;
}
int main() {
	Matrix float <2> d = readMatrix("d.data");
	Matrix float <2> out;
	out = matrixMapG(twice, d, [1]);
	writeMatrix("out.data", out);
	return 0;
}`, Options{Files: files})
	out := files["out.data"]
	sh := out.Shape()
	if sh[0] != 2 || sh[1] != 6 {
		t.Fatalf("out shape = %v, want [2 6]", sh)
	}
	a, _ := out.At(1, 1)
	b, _ := out.At(1, 4)
	if a != b || a.(float64) != 5 {
		t.Fatalf("duplicated row wrong: %v %v", a, b)
	}
}

// Plain matrixMap must still reject size changes (the paper's stated
// restriction), while matrixMapG accepts them.
func TestMatrixMapStillRestricted(t *testing.T) {
	data := matrix.New(matrix.Float, 2, 4)
	files := map[string]*matrix.Matrix{"d.data": data}
	_, _, _, err := run(t, `
Matrix float <1> firstHalf(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return ts[0 : n / 2 - 1];
}
int main() {
	Matrix float <2> d = readMatrix("d.data");
	Matrix float <2> out;
	out = matrixMap(firstHalf, d, [1]);
	return 0;
}`, Options{Files: files})
	if err == nil {
		t.Fatal("plain matrixMap must reject size-changing functions (§III-A.5)")
	}
}

func TestMatrixMapGInconsistentSizesRejected(t *testing.T) {
	data := matrix.New(matrix.Int, 3, 4)
	for k := range data.Ints() {
		data.Ints()[k] = int64(k)
	}
	files := map[string]*matrix.Matrix{"d.data": data}
	_, _, _, err := run(t, `
// result length depends on the row content: inconsistent across rows
Matrix int <1> weird(Matrix int <1> row) {
	return row[0 : (int)row[0] % 3];
}
int main() {
	Matrix int <2> d = readMatrix("d.data");
	Matrix int <2> out;
	out = matrixMapG(weird, d, [1]);
	return 0;
}`, Options{Files: files})
	if err == nil {
		t.Fatal("inconsistent result sizes must be a runtime error")
	}
}
