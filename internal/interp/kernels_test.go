// Integration tests for the specialized arithmetic kernels running
// under the interpreter: pool-parallel execution, chained-expression
// buffer reuse, and serial/parallel result parity — all under the rc
// leak check mustRun enforces.
package interp

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func kernelFile(r *rand.Rand, n int) *matrix.Matrix {
	m := matrix.New(matrix.Float, n)
	fl := m.Floats()
	for k := range fl {
		fl[k] = 0.25 + r.Float64()*3
	}
	return m
}

const kernelChainSrc = `
int main() {
	Matrix float <1> a = readMatrix("a.data");
	Matrix float <1> b = readMatrix("b.data");
	Matrix float <1> c = readMatrix("c.data");
	Matrix float <1> out;
	out = (a + b) .* c - a / 2.0;
	writeMatrix("out.data", out);
	return 0;
}`

// TestKernelChainedExpression runs a chained elementwise expression
// through the interpreter with a worker pool and checks (a) the result
// against the boxed reference path, (b) that the big operators took the
// parallel kernel path, and (c) that the spent temporaries' buffers
// were reused for later operators in the chain.
func TestKernelChainedExpression(t *testing.T) {
	matrix.DrainFreeLists()
	matrix.ResetKernelStats()
	defer matrix.DrainFreeLists()
	r := rand.New(rand.NewSource(7))
	n := 3 * matrix.ParallelGrain
	a, b, c := kernelFile(r, n), kernelFile(r, n), kernelFile(r, n)
	files := map[string]*matrix.Matrix{"a.data": a, "b.data": b, "c.data": c}
	mustRun(t, kernelChainSrc, Options{Files: files, Threads: 4})

	got := files["out.data"]
	if got == nil {
		t.Fatal("out.data not written")
	}
	sum, err := matrix.ElementwiseRef(matrix.OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := matrix.ElementwiseRef(matrix.OpMul, sum, c)
	if err != nil {
		t.Fatal(err)
	}
	half, err := matrix.BroadcastRef(matrix.OpDiv, a, 2.0, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := matrix.ElementwiseRef(matrix.OpSub, prod, half)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want) {
		t.Fatal("kernel chain result differs from boxed reference")
	}

	parallel, _, reused := matrix.KernelStats()
	if parallel == 0 {
		t.Error("no kernel took the parallel path despite Threads=4 and large matrices")
	}
	if reused == 0 {
		t.Error("no buffer was reused across the chained expression")
	}
}

// TestKernelSerialParallelParity: the same program produces identical
// bytes with and without a pool (elementwise kernels do no reductions,
// so chunking cannot change results).
func TestKernelSerialParallelParity(t *testing.T) {
	matrix.DrainFreeLists()
	defer matrix.DrainFreeLists()
	r := rand.New(rand.NewSource(8))
	n := 3 * matrix.ParallelGrain
	a, b, c := kernelFile(r, n), kernelFile(r, n), kernelFile(r, n)
	seq := map[string]*matrix.Matrix{"a.data": a, "b.data": b, "c.data": c}
	par := map[string]*matrix.Matrix{"a.data": a, "b.data": b, "c.data": c}
	mustRun(t, kernelChainSrc, Options{Files: seq})
	mustRun(t, kernelChainSrc, Options{Files: par, Threads: 4})
	if !matrix.Equal(seq["out.data"], par["out.data"]) {
		t.Fatal("parallel kernel result differs from serial")
	}
}

// TestKernelMatMulUnderBudget: the pooled matmul kernel still respects
// the cell budget and the OOM trap contract.
func TestKernelMatMulUnderBudget(t *testing.T) {
	src := `
int main() {
	Matrix float <2> a = readMatrix("a.data");
	Matrix float <2> out;
	out = a * a;
	writeMatrix("out.data", out);
	return 0;
}`
	a := matrix.New(matrix.Float, 64, 64)
	fl := a.Floats()
	for k := range fl {
		fl[k] = float64(k%31) * 0.5
	}
	files := map[string]*matrix.Matrix{"a.data": a}
	mustRun(t, src, Options{Files: files, Threads: 2, MaxCells: 64 * 64 * 8})
	want, err := matrix.MatMulRef(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.AlmostEqual(files["out.data"], want, 1e-6) {
		t.Fatal("pooled matmul differs from reference")
	}

	// Too small a budget for the 64x64 product must trap as OOM, not crash.
	tight := map[string]*matrix.Matrix{"a.data": a}
	_, _, _, err = run(t, src, Options{Files: tight, MaxCells: 64*64 + 10})
	if err == nil {
		t.Fatal("budget-exceeding matmul did not fail")
	}
	re, ok := err.(*RuntimeError)
	if !ok || re.Trap != TrapOOM {
		t.Fatalf("want OOM trap, got %v", err)
	}
}
