// Trap-layer tests: every crash class a user program (or an injected
// fault) can produce must surface as a *RuntimeError with the right
// stable trap code and a source span — never as a process panic — and
// repeated pooled executions must not leak worker goroutines.
package interp

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/rc"
)

// mustTrap runs src and asserts it fails with the given trap code.
func mustTrap(t *testing.T, src string, opts Options, want TrapCode) *RuntimeError {
	t.Helper()
	_, _, _, err := run(t, src, opts)
	if err == nil {
		t.Fatalf("expected a %q trap, got success", want)
	}
	var rte *RuntimeError
	if !errors.As(err, &rte) {
		t.Fatalf("err = %v (%T), want *RuntimeError", err, err)
	}
	if rte.Trap != want {
		t.Fatalf("trap = %q, want %q (err: %v)", rte.Trap, want, err)
	}
	if !strings.Contains(rte.Error(), "[trap:"+string(want)+"]") {
		t.Errorf("Error() = %q, want the trap code in it", rte.Error())
	}
	if rte.SpanString() == "" {
		t.Error("RuntimeError carries no source span")
	}
	return rte
}

func TestTrapShapeNegativeDimension(t *testing.T) {
	mustTrap(t, `
int main() {
	int n = 0 - 3;
	Matrix float <1> m;
	m = with ([0] <= [i] < [n]) genarray([n], 1.0);
	return 0;
}`, Options{}, TrapShape)
}

func TestTrapOOMGenarrayOverBudget(t *testing.T) {
	rte := mustTrap(t, `
int main() {
	int n = 100;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0);
	return 0;
}`, Options{MaxCells: 1000}, TrapOOM)
	if !rte.Trap.IsResource() {
		t.Error("oom must classify as a resource trap")
	}
}

func TestTrapOOMAllocationLoop(t *testing.T) {
	// The budget bounds cumulative allocation, so a loop of individually
	// small allocations is caught too.
	mustTrap(t, `
int main() {
	for (int i = 0; i < 1000; i++) {
		Matrix float <1> m = [0 :: 99] * 1.0;
	}
	return 0;
}`, Options{MaxCells: 5000}, TrapOOM)
}

func TestTrapStep(t *testing.T) {
	rte := mustTrap(t, `
int main() {
	int i = 0;
	while (i >= 0) { i = i + 1; }
	return 0;
}`, Options{MaxSteps: 10_000}, TrapStep)
	if !rte.Trap.IsResource() {
		t.Error("step must classify as a resource trap")
	}
}

func TestTrapDepth(t *testing.T) {
	mustTrap(t, `
int f(int x) { return f(x); }
int main() { return f(1); }`, Options{}, TrapDepth)
}

const parallelGenarraySrc = `
int main() {
	int n = 64;
	Matrix float <1> m;
	m = with ([0] <= [i] < [n]) genarray([n], (float)i);
	return 0;
}`

func TestTrapPanicInjectedIntoWorker(t *testing.T) {
	par.TestHookInjectPanic = func(worker int) {
		if worker == 1 {
			panic("injected worker crash")
		}
	}
	defer func() { par.TestHookInjectPanic = nil }()
	rte := mustTrap(t, parallelGenarraySrc, Options{Threads: 4}, TrapPanic)
	if len(rte.Stack) == 0 {
		t.Error("a genuine panic trap must carry a stack")
	}
	if rte.Trap.IsResource() {
		t.Error("panic is a fault, not a resource trap")
	}
}

func TestTrapRCInjectedDoubleFree(t *testing.T) {
	// The hook commits a real rc violation inside a pool worker: the
	// typed panic must be recovered and classified as the rc trap.
	par.TestHookInjectPanic = func(worker int) {
		if worker == 0 {
			h := rc.NewHeap().Alloc(8)
			h.DecRef()
			h.DecRef()
		}
	}
	defer func() { par.TestHookInjectPanic = nil }()
	mustTrap(t, parallelGenarraySrc, Options{Threads: 4}, TrapRC)
}

func TestOrdinaryRuntimeErrorHasNoTrap(t *testing.T) {
	_, _, _, err := run(t, `
int main() {
	Matrix int <1> v = [0 :: 4];
	return (int)v[9];
}`, Options{})
	var rte *RuntimeError
	if !errors.As(err, &rte) {
		t.Fatalf("err = %v, want *RuntimeError", err)
	}
	if rte.Trap != TrapNone {
		t.Errorf("index error classified as trap %q, want none", rte.Trap)
	}
	if strings.Contains(rte.Error(), "[trap:") {
		t.Errorf("untrapped error message mentions a trap: %q", rte.Error())
	}
}

func TestCloseIdempotent(t *testing.T) {
	_, _, i, err := run(t, `int main() { return 0; }`, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// run already deferred one Close; two more must be harmless.
	i.Close()
	i.Close()
}

// Repeated pooled executions must shut their workers down: the
// goroutine count returns to (near) the baseline once the interpreters
// are closed.
func TestNoGoroutineLeakAcrossRuns(t *testing.T) {
	base := runtime.NumGoroutine()
	for k := 0; k < 20; k++ {
		_, _, _, err := run(t, parallelGenarraySrc, Options{Threads: 8})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Workers exit cooperatively after Shutdown; give them a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after 20 pooled runs", base, runtime.NumGoroutine())
}
