package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// randExpr generates a random integer expression (as source text) and
// its expected value, avoiding division/modulo by zero.
func randExpr(r *rand.Rand, depth int) (string, int64) {
	if depth <= 0 || r.Intn(3) == 0 {
		n := int64(r.Intn(20) + 1)
		return fmt.Sprintf("%d", n), n
	}
	ls, lv := randExpr(r, depth-1)
	rs, rv := randExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", ls, rs), lv / rv
	case 4:
		if rv == 0 {
			return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
		}
		return fmt.Sprintf("(%s %% %s)", ls, rs), lv % rv
	default:
		v := lv
		if rv < lv {
			v = rv
		}
		// min via if-expression idiom: computed through a helper call
		return fmt.Sprintf("mymin(%s, %s)", ls, rs), v
	}
}

const minHelper = `
int mymin(int a, int b) {
	if (a < b) return a;
	return b;
}
`

// The interpreter must agree with direct Go evaluation on random
// integer expression trees, end to end through scanner, parser,
// attribute-grammar checking and evaluation.
func TestQuickDifferentialScalarArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := randExpr(r, 4)
		prog := minHelper + fmt.Sprintf("int main() { int r = %s; print(r); return 0; }", src)
		var d source.Diagnostics
		p := parser.ParseFile("q.xc", prog, parser.AllExtensions(), &d)
		if p == nil {
			t.Logf("parse failed for %s:\n%s", src, d.String())
			return false
		}
		info := sem.Check(p, &d)
		if d.HasErrors() {
			t.Logf("check failed for %s:\n%s", src, d.String())
			return false
		}
		var out strings.Builder
		i := New(p, info, Options{Stdout: &out, MaxSteps: 1_000_000})
		defer i.Close()
		if _, err := i.Run(); err != nil {
			t.Logf("run failed for %s: %v", src, err)
			return false
		}
		return strings.TrimSpace(out.String()) == fmt.Sprintf("%d", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Random with-loop fold sums must agree with Go loops.
func TestQuickDifferentialFolds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		lo := r.Intn(n)
		prog := fmt.Sprintf(`
int main() {
	Matrix int <1> v = [0 :: %d];
	int s = with ([%d] <= [i] < [%d]) fold(+, 0, v[i] * v[i]);
	print(s);
	return 0;
}`, n-1, lo, n)
		want := int64(0)
		for i := lo; i < n; i++ {
			want += int64(i) * int64(i)
		}
		var d source.Diagnostics
		p := parser.ParseFile("q.xc", prog, parser.AllExtensions(), &d)
		if p == nil {
			return false
		}
		info := sem.Check(p, &d)
		if d.HasErrors() {
			return false
		}
		var out strings.Builder
		i := New(p, info, Options{Stdout: &out, MaxSteps: 1_000_000})
		defer i.Close()
		if _, err := i.Run(); err != nil {
			return false
		}
		return strings.TrimSpace(out.String()) == fmt.Sprintf("%d", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
