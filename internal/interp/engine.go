// The service surface alternate execution engines build on. The
// bytecode VM (internal/vm) compiles the checked AST to registers but
// delegates every runtime policy decision — step budgets, allocation
// charging, cancellation, rc bookkeeping, builtin I/O — to the same
// Interp methods the tree walker uses, so the two engines cannot
// drift on resource semantics or error texts.
//
// Step accounting (shared contract): execution ticks the step budget
// exactly once per executed statement — block entry, each statement in
// a block, a function body once per call, each loop body (and for-loop
// init/post) once per iteration. Conditions, expressions and global
// initializers never tick. The VM emits one step opcode at each
// compiled statement entry, so trap:step fires at the same program
// point under both engines.
package interp

import (
	"fmt"
	"path/filepath"

	"repro/internal/ast"
	"repro/internal/matio"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/rc"
	"repro/internal/types"
)

// Pool returns the interpreter's worker pool (nil when sequential);
// engines pass it to Exec for outermost constructs and nil inside
// nested parallel bodies.
func (i *Interp) Pool() *par.Pool { return i.pool }

// Exec is the matrix-runtime execution environment: the supplied pool,
// the interpreter's allocation budget and cancellation context.
func (i *Interp) Exec(pool *par.Pool) matrix.Exec {
	return matrix.Exec{Pool: pool, Budget: i.budget, Ctx: i.ctx}
}

// Budget exposes the cell budget (nil when unbounded).
func (i *Interp) Budget() *matrix.Budget { return i.budget }

// CheckCancel aborts execution once the interpreter's context is
// cancelled. The channel poll is cheap enough to run per statement and
// per with-loop element.
func (i *Interp) CheckCancel(n ast.Node) error {
	if i.done == nil {
		return nil
	}
	select {
	case <-i.done:
		return wrap(n, i.ctx.Err())
	default:
		return nil
	}
}

// StepTick checks cancellation and debits one statement from the step
// budget (see the step-accounting contract in the package comment
// above).
func (i *Interp) StepTick(n ast.Node) error {
	if err := i.CheckCancel(n); err != nil {
		return err
	}
	max := i.opts.MaxSteps
	if max == 0 {
		return nil
	}
	if s := i.steps.Add(1); s > max {
		return trapErr(n, TrapStep, "execution exceeded %d steps", max)
	}
	return nil
}

// ChargeCells debits cells from the allocation budget before an
// allocation the matrix package does not make itself (ranges, file
// reads).
func (i *Interp) ChargeCells(n ast.Node, cells int64) error {
	if i.budget == nil {
		return nil
	}
	if cells < 0 || cells > int64(^uint(0)>>1) {
		return trapErr(n, TrapShape, "allocation of %d cells is impossible", cells)
	}
	if err := i.budget.Charge(int(cells)); err != nil {
		return wrap(n, err)
	}
	return nil
}

// BindValue takes a reference to v on behalf of a variable binding.
func (i *Interp) BindValue(v any) {
	switch x := v.(type) {
	case *matrix.Matrix:
		if x == nil {
			return
		}
		if x.Hdr == nil {
			x.Hdr = i.heap.Alloc(x.Size()*8 + 4) // data + the 4-byte RC header of §III-B
			// When the last reference is dropped, hand the backing
			// storage to the kernel free list. ForceFree (rcrelease)
			// deliberately bypasses this — see rc.Header.SetOnFree.
			x.Hdr.SetOnFree(x.Recycle)
		} else {
			x.Hdr.IncRef()
		}
	case *rcCell:
		if x != nil {
			x.hdr.IncRef()
		}
	case []any:
		for _, e := range x {
			i.BindValue(e)
		}
	}
}

// ReleaseValue drops a reference taken by BindValue.
func (i *Interp) ReleaseValue(v any) {
	switch x := v.(type) {
	case *matrix.Matrix:
		if x != nil {
			x.Hdr.DecRef()
		}
	case *rcCell:
		if x != nil {
			x.hdr.DecRef()
		}
	case []any:
		for _, e := range x {
			i.ReleaseValue(e)
		}
	}
}

// EscapeRef takes an extra reference on v's rc-managed parts so the
// value survives its frame's teardown, appending the headers to
// *pending (the consuming statement's release list).
func (i *Interp) EscapeRef(v any, pending *[]*rc.Header) {
	switch x := v.(type) {
	case *matrix.Matrix:
		if x != nil && x.Hdr != nil {
			x.Hdr.IncRef()
			*pending = append(*pending, x.Hdr)
		}
	case *rcCell:
		if x != nil {
			x.hdr.IncRef()
			*pending = append(*pending, x.hdr)
		}
	case []any:
		for _, e := range x {
			i.EscapeRef(e, pending)
		}
	}
}

// PrintValue implements the print builtin (serialized on the output
// mutex so parallel spawns interleave whole lines).
func (i *Interp) PrintValue(v any) {
	i.outMu.Lock()
	defer i.outMu.Unlock()
	switch v := v.(type) {
	case float64:
		fmt.Fprintf(i.stdout, "%g\n", v)
	case *matrix.Matrix:
		fmt.Fprintf(i.stdout, "%s\n", v)
	default:
		fmt.Fprintf(i.stdout, "%v\n", v)
	}
}

// ReadMatrixFile implements the readMatrix builtin: in-memory Files
// first (charged against the budget), then the filesystem under Dir.
func (i *Interp) ReadMatrixFile(n ast.Node, name string) (*matrix.Matrix, error) {
	i.fileMu.Lock()
	defer i.fileMu.Unlock()
	if i.opts.Files != nil {
		if m, ok := i.opts.Files[name]; ok {
			if err := i.ChargeCells(n, int64(m.Size())); err != nil {
				return nil, err
			}
			return m.Copy(), nil
		}
		if i.opts.Dir == "" {
			return nil, rerr(n, "readMatrix: no matrix %q provided", name)
		}
	}
	m, err := matio.ReadFile(filepath.Join(i.opts.Dir, name))
	if err != nil {
		return nil, wrap(n, err)
	}
	return m, nil
}

// WriteMatrixFile implements the writeMatrix builtin.
func (i *Interp) WriteMatrixFile(n ast.Node, name string, m *matrix.Matrix) error {
	i.fileMu.Lock()
	defer i.fileMu.Unlock()
	if i.opts.Files != nil && i.opts.Dir == "" {
		i.opts.Files[name] = m.Copy()
		return nil
	}
	return wrap(n, matio.WriteFile(filepath.Join(i.opts.Dir, name), m))
}

// RcNew allocates a refcounted cell holding v, returning the opaque
// cell value and its header. The fresh count of 1 is the expression's
// temporary reference; the engine must register the header on the
// enclosing statement's pending list.
func (i *Interp) RcNew(v any) (cell any, hdr *rc.Header) {
	h := i.heap.Alloc(8 + 4)
	return &rcCell{hdr: h, val: v}, h
}

// RcGet implements the rcget builtin against an opaque cell value.
func (i *Interp) RcGet(n ast.Node, cellv any) (any, error) {
	cell, ok := cellv.(*rcCell)
	if !ok || cell == nil {
		return nil, rerr(n, "rcget of a null refcounted pointer")
	}
	if cell.hdr.Freed() {
		return nil, trapErr(n, TrapRC, "rcget of a freed refcounted pointer (use after release)")
	}
	return cell.val, nil
}

// RcSet implements the rcset builtin. elem, when non-nil, is the
// cell's declared element type; the stored value is promoted to it so
// rcget returns a value whose representation matches the static type
// (an int stored through a refcounted float * arrives as float).
func (i *Interp) RcSet(n ast.Node, cellv, v any, elem *types.Type) error {
	cell, ok := cellv.(*rcCell)
	if !ok || cell == nil {
		return rerr(n, "rcset of a null refcounted pointer")
	}
	if cell.hdr.Freed() {
		return trapErr(n, TrapRC, "rcset of a freed refcounted pointer (use after release)")
	}
	if elem != nil {
		v = promoteScalar(elem, v)
	}
	cell.val = v
	return nil
}

// RcRelease implements the rcrelease builtin.
func (i *Interp) RcRelease(n ast.Node, cellv any) error {
	cell, ok := cellv.(*rcCell)
	if !ok || cell == nil {
		return rerr(n, "rcrelease of a null refcounted pointer")
	}
	if !cell.hdr.ForceFree() {
		return trapErr(n, TrapRC, "rcrelease of an already-released refcounted pointer (double release)")
	}
	return nil
}

// promoteScalar applies the int→float promotion that AssignableTo
// admits statically to an already-evaluated value, recursively through
// tuples. It never checks and never fails; both engines apply it at
// function returns and rcset stores so a value's runtime
// representation always matches its static scalar type.
func promoteScalar(ty *types.Type, v any) any {
	switch ty.Kind {
	case types.Float:
		if iv, ok := v.(int64); ok {
			return float64(iv)
		}
	case types.Tuple:
		tup, ok := v.([]any)
		if !ok || len(tup) != len(ty.Elems) {
			return v
		}
		out := make([]any, len(tup))
		for k := range tup {
			out[k] = promoteScalar(ty.Elems[k], tup[k])
		}
		return out
	}
	return v
}

// PromoteScalar is promoteScalar for alternate engines.
func PromoteScalar(ty *types.Type, v any) any { return promoteScalar(ty, v) }

// CastScalar applies a C-style scalar cast to an evaluated value;
// exported so alternate engines share one conversion semantics.
func CastScalar(n ast.Node, to ast.PrimKind, v any) (any, error) {
	return castScalar(n, to, v)
}

// CoerceValue checks v against declared type ty at binding time: this
// is where AnyMatrix values (readMatrix results) are validated against
// declared matrix types and int→float promotion happens for scalars.
// Exported so alternate engines share one coercion semantics.
func CoerceValue(n ast.Node, ty *types.Type, v any) (any, error) {
	return coerceValue(n, ty, v)
}

// ZeroValue produces the default value for a declared type: scalars
// zero, matrices unassigned-nil, tuples elementwise, rc pointers null.
func ZeroValue(ty *types.Type) any {
	switch ty.Kind {
	case types.Int:
		return int64(0)
	case types.Float:
		return float64(0)
	case types.Bool:
		return false
	case types.Matrix, types.AnyMatrix:
		return (*matrix.Matrix)(nil)
	case types.Tuple:
		out := make([]any, len(ty.Elems))
		for k, e := range ty.Elems {
			out[k] = ZeroValue(e)
		}
		return out
	case types.RcPtr:
		return (*rcCell)(nil)
	}
	return nil
}
