package interp

import (
	"bytes"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func runRepro(t *testing.T, src string) {
	t.Helper()
	data := matrix.New(matrix.Float, 6)
	for k := range data.Floats() {
		data.Floats()[k] = float64(k)
	}
	files := map[string]*matrix.Matrix{"v.data": data}
	var di source.Diagnostics
	prog := parser.ParseFile("t.xc", src, parser.AllExtensions(), &di)
	if prog == nil {
		t.Fatal(di.String())
	}
	info := sem.Check(prog, &di)
	if di.HasErrors() {
		t.Fatal(di.String())
	}
	var out bytes.Buffer
	ii := New(prog, info, Options{Files: files, Stdout: &out, MaxSteps: 1000000})
	defer ii.Close()
	if _, err := ii.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := ii.Heap().CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// Regression: returning a matrix bound in a function's block used to
// release it in the block's frame pop before the caller could take a
// reference (use-after-free in the RC accounting).
func TestReturnBoundLocalThroughBlocks(t *testing.T) {
	runRepro(t, `
(Matrix float <1>, int) half(Matrix float <1> ts, int i) {
	return (ts[0 :: i], i + 1);
}
Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> trough;
	int i = 1;
	while (i < 4) {
		(trough, i) = half(ts, i);
	}
	return trough;
}
int main() {
	Matrix float <1> d = readMatrix("v.data");
	Matrix float <1> s = scoreTS(d);
	return 0;
}`)
}

// Returning a bound local out of a for-loop scope.
func TestReturnBoundLocalFromForLoop(t *testing.T) {
	runRepro(t, `
Matrix float <1> pick(Matrix float <1> v) {
	for (int i = 0; i < 3; i++) {
		Matrix float <1> w = v[0 :: i + 1];
		if (i == 2) { return w; }
	}
	return v;
}
int main() {
	Matrix float <1> d = readMatrix("v.data");
	Matrix float <1> s = pick(d);
	return dimSize(s, 0);
}`)
}
