// Package interp executes type-checked extended-CMINUS programs. It
// implements the same semantics the code generator's emitted C has:
// matrices are reference values managed by reference counting
// (§III-B), with-loops and matrixMap execute on the spawn-once
// fork-join pool (§III-C) with the outermost parallel construct
// distributed and inner constructs sequential, and matrix indexing /
// overloaded operators behave per §III-A.
//
// Together with internal/cgen this gives the reproduction both halves
// of the paper's translator: inspectable generated C, and runnable
// semantics for the applications of §IV.
package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/rc"
	"repro/internal/sem"
	"repro/internal/types"
)

// Options configures an interpreter.
type Options struct {
	// Threads is the worker-pool size for parallel constructs;
	// 0 or 1 runs sequentially (the -t command line argument of the
	// generated programs).
	Threads int
	// Stdout receives print output (defaults to os.Stdout).
	Stdout io.Writer
	// Dir is the base directory for readMatrix/writeMatrix paths.
	Dir string
	// Heap receives reference-count accounting (defaults to a fresh
	// heap; tests use it to assert leak-freedom).
	Heap *rc.Heap
	// MaxSteps bounds execution (0 = no bound) to catch runaway loops.
	MaxSteps int64
	// MaxCells bounds the total matrix cells the program may allocate
	// (0 = no bound); oversized or runaway allocations fail with the
	// "oom" trap instead of OOM-killing the process. Servers clamp
	// this per request.
	MaxCells int64
	// Files provides in-memory matrices for readMatrix, checked
	// before the filesystem. writeMatrix writes back into it when
	// non-nil and Dir is empty.
	Files map[string]*matrix.Matrix
	// Context, when non-nil, cancels execution: the eval loop checks it
	// at every statement and with-loop element and aborts with the
	// context's error (long-lived servers use this for per-request
	// deadlines).
	Context context.Context
}

// Interp executes one program.
type Interp struct {
	prog *ast.Program
	info *sem.Info
	opts Options

	pool        *par.Pool
	heap        *rc.Heap
	budget      *matrix.Budget
	stdout      io.Writer
	outMu       sync.Mutex
	fileMu      sync.Mutex
	globalFrame *frame
	steps       atomic.Int64
	ctx         context.Context
	done        <-chan struct{}
	closeOnce   sync.Once
}

// New builds an interpreter for a checked program.
func New(prog *ast.Program, info *sem.Info, opts Options) *Interp {
	i := &Interp{prog: prog, info: info, opts: opts}
	i.stdout = opts.Stdout
	if i.stdout == nil {
		i.stdout = os.Stdout
	}
	i.heap = opts.Heap
	if i.heap == nil {
		i.heap = rc.NewHeap()
	}
	if opts.Threads > 1 {
		i.pool = par.NewPool(opts.Threads)
	}
	i.budget = matrix.NewBudget(opts.MaxCells)
	if opts.Context != nil {
		i.ctx = opts.Context
		i.done = opts.Context.Done()
	}
	return i
}

// Close shuts down the worker pool. It is idempotent and defer-safe:
// calling it after a trap, panic or mid-run error releases the workers
// exactly once (panic recovery in the pool guarantees no worker is
// left spinning in an unfinished construct).
func (i *Interp) Close() {
	i.closeOnce.Do(func() {
		if i.pool != nil {
			i.pool.Shutdown()
		}
	})
}

// Heap exposes the RC heap for leak assertions in tests.
func (i *Interp) Heap() *rc.Heap { return i.heap }

// RuntimeError is an execution failure with source position and an
// optional trap classification (see TrapCode).
type RuntimeError struct {
	Node ast.Node
	Trap TrapCode
	Err  error
	// Stack is the goroutine stack at the panic site for TrapPanic
	// errors; nil otherwise.
	Stack []byte
}

func (e *RuntimeError) Error() string {
	kind := "runtime error"
	if e.Trap != TrapNone {
		kind = fmt.Sprintf("runtime error [trap:%s]", e.Trap)
	}
	if e.Node != nil && e.Node.Span().Start.IsValid() {
		return fmt.Sprintf("%s: %s: %v", e.Node.Span(), kind, e.Err)
	}
	return fmt.Sprintf("%s: %v", kind, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// SpanString renders the source span, or "" when unknown; servers put
// it in structured trap responses.
func (e *RuntimeError) SpanString() string {
	if e.Node != nil && e.Node.Span().Start.IsValid() {
		return e.Node.Span().String()
	}
	return ""
}

func rerr(n ast.Node, format string, args ...any) error {
	return &RuntimeError{Node: n, Err: fmt.Errorf(format, args...)}
}

func wrap(n ast.Node, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*RuntimeError); ok {
		return err
	}
	re := &RuntimeError{Node: n, Trap: classifyErr(err), Err: err}
	// A pool worker that panicked already captured the stack at the
	// panic site; surface it on the trap.
	var pe *par.PanicError
	if errors.As(err, &pe) {
		re.Stack = pe.Stack
	}
	return re
}

// --- frames and reference counting ---

// binding is a variable's current value plus its declared type,
// which drives runtime coercion checks (readMatrix results, int→float
// promotion) on every assignment.
type binding struct {
	v  any
	ty *types.Type
}

// frame is one lexical scope of variable bindings.
type frame struct {
	parent *frame
	vars   map[string]*binding
}

func newFrame(parent *frame) *frame {
	return &frame{parent: parent, vars: map[string]*binding{}}
}

func (f *frame) lookup(name string) (*binding, bool) {
	for cur := f; cur != nil; cur = cur.parent {
		if b, ok := cur.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

// ctx is the per-goroutine execution context: parallel with-loop and
// matrixMap bodies run in child contexts with the pool disabled, so
// only the outermost construct is distributed (as in the generated C).
type ctx struct {
	i       *Interp
	pool    *par.Pool
	frame   *frame
	end     []int64 // stack of 'end' values for nested index dims
	pending []*rc.Header
	depth   int
	// futures holds the enclosing function's outstanding Cilk spawns;
	// callFunction syncs them implicitly before returning.
	futures []*spawnFuture
}

func (c *ctx) child(frame *frame, pool *par.Pool) *ctx {
	return &ctx{i: c.i, pool: pool, frame: frame, depth: c.depth + 1}
}

// bindValue takes a reference to v on behalf of a variable binding.
func (c *ctx) bindValue(v any) { c.i.BindValue(v) }

// releaseValue drops a reference taken by bindValue.
func (c *ctx) releaseValue(v any) { c.i.ReleaseValue(v) }

// escapeRef takes an extra reference so a value survives its frame's
// teardown; the reference is registered for release at the end of the
// consuming statement.
func (c *ctx) escapeRef(v any) { c.i.EscapeRef(v, &c.pending) }

// releasePending drops escape references accumulated since mark.
func (c *ctx) releasePending(mark int) {
	for _, h := range c.pending[mark:] {
		h.DecRef()
	}
	c.pending = c.pending[:mark]
}

// popFrame releases all bindings in f.
func (c *ctx) popFrame(f *frame) {
	for _, b := range f.vars {
		c.releaseValue(b.v)
	}
}

// checkCancel aborts execution once the interpreter's context is
// cancelled.
func (c *ctx) checkCancel(n ast.Node) error { return c.i.CheckCancel(n) }

// step ticks the statement budget: exactly one tick per executed
// statement, never for conditions or expressions (the contract both
// engines share — see engine.go).
func (c *ctx) step(n ast.Node) error { return c.i.StepTick(n) }

// exec is the matrix-runtime execution environment for this context:
// the pool (nil in nested constructs), the interpreter's allocation
// budget and cancellation context.
func (c *ctx) exec() matrix.Exec {
	return matrix.Exec{Pool: c.pool, Budget: c.i.budget, Ctx: c.i.ctx}
}

// charge debits cells from the allocation budget before an allocation
// the matrix package does not make itself (ranges, file reads).
func (c *ctx) charge(n ast.Node, cells int64) error { return c.i.ChargeCells(n, cells) }

// Run executes main() and returns its exit code. Run never panics: a
// panic escaping evaluation — a matrix kernel shape violation, an rc
// double free, or a fault-injected crash — is recovered into a
// *RuntimeError with a trap code, so a daemon embedding the
// interpreter survives any program it is handed.
func (i *Interp) Run() (code int, err error) {
	defer func() {
		if r := recover(); r != nil {
			code, err = 0, recoveredError(i.prog, r)
		}
	}()
	return i.run()
}

func (i *Interp) run() (int, error) {
	mainSig, ok := i.info.Funcs["main"]
	if !ok {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	root := &ctx{i: i, pool: i.pool, frame: newFrame(nil)}
	i.globalFrame = root.frame
	// Globals: evaluate initializers in order.
	gframe := root.frame
	for _, d := range i.prog.Decls {
		g, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		ty, terr := types.FromAST(g.Type)
		if terr != nil {
			return 0, wrap(g, terr)
		}
		var v any
		var err error
		if g.Init != nil {
			v, err = root.evalExpr(g.Init)
			if err != nil {
				return 0, err
			}
			v, err = root.coerceToType(g, ty, v)
			if err != nil {
				return 0, err
			}
		} else {
			v = zeroValue(g.Type)
		}
		root.bindValue(v)
		gframe.vars[g.Name] = &binding{v: v, ty: ty}
		root.releasePending(0)
	}
	ret, err := root.callFunction(mainSig.Decl, nil, mainSig.Decl)
	if err != nil {
		return 0, err
	}
	root.releasePending(0)
	root.popFrame(gframe)
	code := 0
	if n, ok := ret.(int64); ok {
		code = int(n)
	}
	return code, nil
}

// zeroValue produces the default value for a declared type.
func zeroValue(te ast.TypeExpr) any {
	switch t := te.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return int64(0)
		case ast.PrimFloat:
			return float64(0)
		case ast.PrimBool:
			return false
		}
		return nil
	case *ast.MatrixType:
		// Declared-but-unassigned matrices start empty; they must be
		// assigned before use (indexing an empty matrix errors).
		return (*matrix.Matrix)(nil)
	case *ast.TupleType:
		out := make([]any, len(t.Elems))
		for k, e := range t.Elems {
			out[k] = zeroValue(e)
		}
		return out
	case *ast.RcPtrType:
		return (*rcCell)(nil)
	}
	return nil
}

// rcCell is the runtime value of the refcount extension's pointers.
type rcCell struct {
	hdr *rc.Header
	val any
}

// coerceToDeclared checks a value against a declared type at binding
// time — this is where readMatrix's dynamically typed result (and any
// other AnyMatrix value) is validated, and int→float promotion
// happens for scalars.
func (c *ctx) coerceToDeclared(n ast.Node, te ast.TypeExpr, v any) (any, error) {
	ty, err := types.FromAST(te)
	if err != nil {
		return nil, wrap(n, err)
	}
	return c.coerceToType(n, ty, v)
}

func (c *ctx) coerceToType(n ast.Node, ty *types.Type, v any) (any, error) {
	return coerceValue(n, ty, v)
}

func coerceValue(n ast.Node, ty *types.Type, v any) (any, error) {
	switch ty.Kind {
	case types.Float:
		if iv, ok := v.(int64); ok {
			return float64(iv), nil
		}
	case types.Matrix:
		m, ok := v.(*matrix.Matrix)
		if !ok {
			return nil, rerr(n, "expected a matrix value, got %T", v)
		}
		if m == nil {
			return nil, rerr(n, "use of unassigned matrix")
		}
		wantElem := map[types.Kind]matrix.Elem{
			types.Float: matrix.Float, types.Int: matrix.Int, types.Bool: matrix.Bool,
		}[ty.Elem.Kind]
		if m.Elem() != wantElem || m.Rank() != ty.Rank {
			return nil, rerr(n, "matrix of type Matrix %s <%d> cannot hold a Matrix %s <%d> value",
				ty.Elem, ty.Rank, m.Elem(), m.Rank())
		}
	case types.Tuple:
		tup, ok := v.([]any)
		if !ok || len(tup) != len(ty.Elems) {
			return nil, rerr(n, "expected a %d-tuple", len(ty.Elems))
		}
		out := make([]any, len(tup))
		for k := range tup {
			cv, err := coerceValue(n, ty.Elems[k], tup[k])
			if err != nil {
				return nil, err
			}
			out[k] = cv
		}
		return out, nil
	}
	return v, nil
}
