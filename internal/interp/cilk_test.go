package interp

import (
	"strings"
	"testing"

	"repro/internal/grammar"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// The classic Cilk fib: spawned recursive calls joined by sync.
const cilkFib = `
int fib(int n) {
	if (n < 2) return n;
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);
	b = fib(n - 2);
	sync;
	return a + b;
}
int main() {
	int r = 0;
	spawn r = fib(12);
	sync;
	return r;
}
`

func TestCilkFib(t *testing.T) {
	code, _ := mustRun(t, cilkFib, Options{})
	if code != 144 {
		t.Fatalf("fib(12) = %d, want 144", code)
	}
}

func TestCilkImplicitSyncAtExit(t *testing.T) {
	// no explicit sync: the function exit must join the spawn, so the
	// global side effect is visible afterwards.
	// Two spawns write two distinct globals (sharing one would be a
	// user-level data race, in Cilk as here).
	code, _ := mustRun(t, `
int c1 = 0;
int c2 = 0;
int bump1() { c1 = 5; return 0; }
int bump2() { c2 = 7; return 0; }
void work() {
	spawn bump1();
	spawn bump2();
}
int main() {
	work();
	return c1 + c2;
}`, Options{})
	if code != 12 {
		t.Fatalf("c1+c2 = %d, want 12", code)
	}
}

func TestCilkSpawnMatrixResult(t *testing.T) {
	code, _ := mustRun(t, `
Matrix float <1> make(int n) {
	return with ([0] <= [i] < [n]) genarray([n], (float)i * 2.0);
}
int main() {
	Matrix float <1> v;
	spawn v = make(5);
	sync;
	return (int)v[4];
}`, Options{})
	if code != 8 {
		t.Fatalf("v[4] = %d, want 8", code)
	}
}

func TestCilkSpawnMatrixArgumentStaysAlive(t *testing.T) {
	// The spawn takes a reference to its matrix argument; reassigning
	// the caller's variable must not free it under the spawned call.
	code, _ := mustRun(t, `
float total(Matrix float <1> v) {
	int n = dimSize(v, 0);
	return with ([0] <= [i] < [n]) fold(+, 0.0, v[i]);
}
int main() {
	Matrix float <1> a = [1 :: 4] * 1.0;
	float s = 0.0;
	spawn s = total(a);
	a = [1 :: 2] * 1.0;  // reassign while the spawn may still run
	sync;
	return (int)s;
}`, Options{})
	if code != 10 {
		t.Fatalf("sum = %d, want 10", code)
	}
}

func TestCilkManySpawnsInLoop(t *testing.T) {
	code, _ := mustRun(t, `
int sq(int x) { return x * x; }
int acc = 0;
int addsq(int x) {
	acc = acc + sq(x);
	return 0;
}
int main() {
	int r0 = 0; int r1 = 0; int r2 = 0; int r3 = 0;
	spawn r0 = sq(1);
	spawn r1 = sq(2);
	spawn r2 = sq(3);
	spawn r3 = sq(4);
	sync;
	return r0 + r1 + r2 + r3;
}`, Options{})
	if code != 30 {
		t.Fatalf("sum of squares = %d, want 30", code)
	}
}

func TestCilkErrorsPropagateAtSync(t *testing.T) {
	_, _, _, err := run(t, `
int boom(int n) {
	Matrix int <1> v = [0 :: 2];
	return (int)v[n];
}
int main() {
	int r = 0;
	spawn r = boom(99);
	sync;
	return r;
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("spawned error should surface at sync, got %v", err)
	}
}

func TestCilkSemErrors(t *testing.T) {
	bad := []struct{ src, want string }{
		{`int main() { spawn 1 + 2; return 0; }`, "function call"},
		{`int main() { spawn print(1); return 0; }`, "user-defined"},
		{`int f() { return 1; } int main() { spawn q = f(); return 0; }`, "not declared"},
		{`void f() { } int main() { int x = 0; spawn x = f(); sync; return x; }`, "void"},
		{`float f() { return 1.5; } int main() { bool b = false; spawn b = f(); sync; return 0; }`, "cannot assign"},
	}
	for _, c := range bad {
		var d source.Diagnostics
		p := parser.ParseFile("t.xc", c.src, parser.AllExtensions(), &d)
		if p == nil {
			t.Fatalf("parse failed: %s", d.String())
		}
		sem.Check(p, &d)
		if !d.HasErrors() || !strings.Contains(d.String(), c.want) {
			t.Errorf("src %q: want error containing %q, got:\n%s", c.src, c.want, d.String())
		}
	}
}

// The Cilk extension must pass both modular analyses, like the others.
func TestCilkPassesComposabilityAnalyses(t *testing.T) {
	r := grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.CilkSpec())
	if !r.Passed {
		t.Fatalf("cilk grammar must pass the MDA: %s", r)
	}
	if len(r.Markers) != 2 {
		t.Errorf("markers = %v, want [spawn sync]", r.Markers)
	}
}

func TestCilkKeywordStillUsableAsIdentifier(t *testing.T) {
	// context-aware scanning: 'spawn' and 'sync' are identifiers where
	// the keywords are not grammatically valid.
	code, _ := mustRun(t, `
int main() {
	int spawn = 20;
	int sync = 22;
	return spawn + sync;
}`, Options{})
	if code != 42 {
		t.Fatalf("exit = %d, want 42", code)
	}
}
