// The trap layer: every failure escaping user-program execution — a
// matrix shape panic, an rc double-free, an allocation over budget, a
// blown step/depth budget, or an arbitrary panic in a with-loop,
// matrixMap or cilk spawn body — is converted into a *RuntimeError
// carrying the source span and a stable TrapCode. Long-lived services
// (cmserved) and CLIs (cmrun) dispatch on the code: the daemon maps it
// to a structured HTTP response and a metrics counter, the CLI to an
// exit code. Nothing a user program does may panic the process.
package interp

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/rc"
)

// TrapCode classifies a runtime failure; codes are stable API for the
// server's trap responses and cmrun's exit codes.
type TrapCode string

// Trap codes.
const (
	// TrapNone marks an ordinary runtime error (bad index, type
	// mismatch, missing file) — diagnosable but not a crash class.
	TrapNone TrapCode = ""
	// TrapShape is an impossible matrix shape: negative dimension,
	// size overflow, or a kernel shape panic.
	TrapShape TrapCode = "shape"
	// TrapRC is a reference-counting invariant violation: double free,
	// use after free, negative count.
	TrapRC TrapCode = "rc"
	// TrapOOM is an allocation denied by the cell budget
	// (Options.MaxCells).
	TrapOOM TrapCode = "oom"
	// TrapStep is the interpreter step budget (Options.MaxSteps).
	TrapStep TrapCode = "step"
	// TrapDepth is the call-stack depth limit.
	TrapDepth TrapCode = "depth"
	// TrapPanic is any other panic recovered from execution.
	TrapPanic TrapCode = "panic"
)

// IsResource reports whether the trap is a resource-budget exhaustion
// (as opposed to a program fault); cmrun gives these their own exit
// code.
func (t TrapCode) IsResource() bool {
	return t == TrapOOM || t == TrapStep || t == TrapDepth
}

// classifyErr assigns a trap code to an error produced (or recovered)
// during execution. The typed errors of the runtime layers — matrix
// budget/shape errors, rc violations, pool panics — each map to a
// stable code; anything else recovered from a panic is TrapPanic.
func classifyErr(err error) TrapCode {
	var be *matrix.BudgetError
	if errors.As(err, &be) {
		return TrapOOM
	}
	var se *matrix.ShapeError
	if errors.As(err, &se) {
		return TrapShape
	}
	var rv *rc.Violation
	if errors.As(err, &rv) {
		return TrapRC
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		if c := classifyPanicValue(pe.Value); c != TrapPanic {
			return c
		}
		return TrapPanic
	}
	return TrapNone
}

// classifyPanicValue assigns a trap code to a recovered panic value.
func classifyPanicValue(r any) TrapCode {
	if err, ok := r.(error); ok {
		if c := classifyErr(err); c != TrapNone {
			return c
		}
	}
	return TrapPanic
}

// trapErr builds a RuntimeError with an explicit trap code.
func trapErr(n ast.Node, code TrapCode, format string, args ...any) error {
	return &RuntimeError{Node: n, Trap: code, Err: fmt.Errorf(format, args...)}
}

// Classify assigns a trap code to an arbitrary execution error;
// exported for alternate execution engines.
func Classify(err error) TrapCode { return classifyErr(err) }

// WrapError attaches a source node and trap classification to err,
// passing existing *RuntimeErrors through unchanged; exported for
// alternate execution engines.
func WrapError(n ast.Node, err error) error { return wrap(n, err) }

// Errorf builds an ordinary (untrapped) runtime error at n.
func Errorf(n ast.Node, format string, args ...any) error {
	return rerr(n, format, args...)
}

// Trapf builds a RuntimeError with an explicit trap code at n.
func Trapf(n ast.Node, code TrapCode, format string, args ...any) error {
	return trapErr(n, code, format, args...)
}

// Recovered converts a recovered panic value into a *RuntimeError;
// exported for alternate execution engines.
func Recovered(n ast.Node, r any) *RuntimeError { return recoveredError(n, r) }

// recoveredError converts a recovered panic value into a
// *RuntimeError, classifying typed runtime panics (rc violations,
// shape panics, pool panics) and capturing the stack for genuinely
// unexpected ones.
func recoveredError(n ast.Node, r any) *RuntimeError {
	if re, ok := r.(*RuntimeError); ok {
		return re
	}
	code := classifyPanicValue(r)
	var err error
	switch v := r.(type) {
	case *par.PanicError:
		// Keep the pool's attribution (worker id) but not the double
		// "panic in worker" prefix on re-wrap.
		err = v
	case error:
		err = v
	default:
		err = fmt.Errorf("panic: %v", v)
	}
	re := &RuntimeError{Node: n, Trap: code, Err: err}
	if code == TrapPanic {
		re.Stack = debug.Stack()
	}
	return re
}
