// Builtin library functions: the host's dimSize / readMatrix /
// writeMatrix / print and the reference-counting extension's
// rcnew / rcget / rcset / rcrelease.
package interp

import (
	"fmt"
	"path/filepath"

	"repro/internal/ast"
	"repro/internal/matio"
	"repro/internal/matrix"
)

func (c *ctx) evalBuiltin(e *ast.CallExpr, args []any) (any, error) {
	switch e.Fun {
	case "dimSize":
		m, ok := args[0].(*matrix.Matrix)
		if !ok || m == nil {
			return nil, rerr(e, "dimSize of a non-matrix or unassigned matrix")
		}
		d, ok := args[1].(int64)
		if !ok {
			return nil, rerr(e, "dimSize dimension must be int")
		}
		n, err := m.DimSize(int(d))
		if err != nil {
			return nil, wrap(e, err)
		}
		return int64(n), nil

	case "readMatrix":
		name, ok := args[0].(string)
		if !ok {
			return nil, rerr(e, "readMatrix expects a file name string")
		}
		return c.readMatrix(e, name)

	case "writeMatrix":
		name, _ := args[0].(string)
		m, ok := args[1].(*matrix.Matrix)
		if !ok || m == nil {
			return nil, rerr(e, "writeMatrix of a non-matrix or unassigned matrix")
		}
		return nil, c.writeMatrix(e, name, m)

	case "print":
		c.i.outMu.Lock()
		defer c.i.outMu.Unlock()
		switch v := args[0].(type) {
		case float64:
			fmt.Fprintf(c.i.stdout, "%g\n", v)
		case *matrix.Matrix:
			fmt.Fprintf(c.i.stdout, "%s\n", v)
		default:
			fmt.Fprintf(c.i.stdout, "%v\n", v)
		}
		return nil, nil

	case "rcnew":
		h := c.i.heap.Alloc(8 + 4)
		cell := &rcCell{hdr: h, val: args[0]}
		// The fresh count of 1 is the expression's temporary
		// reference; binding takes its own, and the temporary is
		// dropped when the enclosing statement finishes.
		c.pending = append(c.pending, h)
		return cell, nil

	case "rcget":
		cell, ok := args[0].(*rcCell)
		if !ok || cell == nil {
			return nil, rerr(e, "rcget of a null refcounted pointer")
		}
		if cell.hdr.Freed() {
			return nil, trapErr(e, TrapRC, "rcget of a freed refcounted pointer (use after release)")
		}
		return cell.val, nil

	case "rcset":
		cell, ok := args[0].(*rcCell)
		if !ok || cell == nil {
			return nil, rerr(e, "rcset of a null refcounted pointer")
		}
		if cell.hdr.Freed() {
			return nil, trapErr(e, TrapRC, "rcset of a freed refcounted pointer (use after release)")
		}
		cell.val = args[1]
		return nil, nil

	case "rcrelease":
		cell, ok := args[0].(*rcCell)
		if !ok || cell == nil {
			return nil, rerr(e, "rcrelease of a null refcounted pointer")
		}
		if !cell.hdr.ForceFree() {
			return nil, trapErr(e, TrapRC, "rcrelease of an already-released refcounted pointer (double release)")
		}
		return nil, nil
	}
	return nil, rerr(e, "undeclared function %q", e.Fun)
}

func (c *ctx) readMatrix(e *ast.CallExpr, name string) (*matrix.Matrix, error) {
	c.i.fileMu.Lock()
	defer c.i.fileMu.Unlock()
	if c.i.opts.Files != nil {
		if m, ok := c.i.opts.Files[name]; ok {
			if err := c.charge(e, int64(m.Size())); err != nil {
				return nil, err
			}
			return m.Copy(), nil
		}
		if c.i.opts.Dir == "" {
			return nil, rerr(e, "readMatrix: no matrix %q provided", name)
		}
	}
	m, err := matio.ReadFile(filepath.Join(c.i.opts.Dir, name))
	if err != nil {
		return nil, wrap(e, err)
	}
	return m, nil
}

func (c *ctx) writeMatrix(e *ast.CallExpr, name string, m *matrix.Matrix) error {
	c.i.fileMu.Lock()
	defer c.i.fileMu.Unlock()
	if c.i.opts.Files != nil && c.i.opts.Dir == "" {
		c.i.opts.Files[name] = m.Copy()
		return nil
	}
	return wrap(e, matio.WriteFile(filepath.Join(c.i.opts.Dir, name), m))
}
