// Builtin library functions: the host's dimSize / readMatrix /
// writeMatrix / print and the reference-counting extension's
// rcnew / rcget / rcset / rcrelease.
package interp

import (
	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/sem"
	"repro/internal/types"
)

func (c *ctx) evalBuiltin(e *ast.CallExpr, args []any) (any, error) {
	switch e.Fun {
	case "dimSize":
		m, ok := args[0].(*matrix.Matrix)
		if !ok || m == nil {
			return nil, rerr(e, "dimSize of a non-matrix or unassigned matrix")
		}
		d, ok := args[1].(int64)
		if !ok {
			return nil, rerr(e, "dimSize dimension must be int")
		}
		n, err := m.DimSize(int(d))
		if err != nil {
			return nil, wrap(e, err)
		}
		return int64(n), nil

	case "readMatrix":
		name, ok := args[0].(string)
		if !ok {
			return nil, rerr(e, "readMatrix expects a file name string")
		}
		return c.readMatrix(e, name)

	case "writeMatrix":
		name, _ := args[0].(string)
		m, ok := args[1].(*matrix.Matrix)
		if !ok || m == nil {
			return nil, rerr(e, "writeMatrix of a non-matrix or unassigned matrix")
		}
		return nil, c.writeMatrix(e, name, m)

	case "print":
		c.i.PrintValue(args[0])
		return nil, nil

	case "rcnew":
		cell, h := c.i.RcNew(args[0])
		// The fresh count of 1 is the expression's temporary
		// reference; binding takes its own, and the temporary is
		// dropped when the enclosing statement finishes.
		c.pending = append(c.pending, h)
		return cell, nil

	case "rcget":
		return c.i.RcGet(e, args[0])

	case "rcset":
		return nil, c.i.RcSet(e, args[0], args[1], rcElemType(c.i.info, e.Args[0]))

	case "rcrelease":
		return nil, c.i.RcRelease(e, args[0])
	}
	return nil, rerr(e, "undeclared function %q", e.Fun)
}

// rcElemType resolves the declared element type of an rc-pointer
// expression, or nil when unrecorded.
func rcElemType(info *sem.Info, e ast.Expr) *types.Type {
	if ty := info.TypeOf(e); ty.Kind == types.RcPtr {
		return ty.Elem
	}
	return nil
}

func (c *ctx) readMatrix(e *ast.CallExpr, name string) (*matrix.Matrix, error) {
	return c.i.ReadMatrixFile(e, name)
}

func (c *ctx) writeMatrix(e *ast.CallExpr, name string, m *matrix.Matrix) error {
	return c.i.WriteMatrixFile(e, name, m)
}
