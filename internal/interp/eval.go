// Statement and expression evaluation.
package interp

import (
	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/types"
)

// control is the statement outcome.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// callFunction runs fn with already-evaluated arguments.
func (c *ctx) callFunction(fn *ast.FuncDecl, args []any, site ast.Node) (any, error) {
	if c.depth > 512 {
		return nil, trapErr(site, TrapDepth, "call stack exceeded 512 frames (infinite recursion in %q?)", fn.Name)
	}
	f := newFrame(c.i.globalFrame)
	cc := c.child(f, c.pool)
	for k, p := range fn.Params {
		ty, err := types.FromAST(p.Type)
		if err != nil {
			return nil, wrap(p, err)
		}
		v, err := cc.coerceToType(site, ty, args[k])
		if err != nil {
			return nil, err
		}
		cc.bindValue(v)
		f.vars[p.Name] = &binding{v: v, ty: ty}
	}
	ctl, ret, err := cc.execStmt(fn.Body)
	// Implicit sync (Cilk): join outstanding spawns before the frame
	// tears down, whatever the exit path.
	if serr := cc.syncFutures(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		cc.releasePending(0)
		cc.popFrame(f)
		return nil, err
	}
	if sig, ok := c.i.info.Funcs[fn.Name]; ok && sig.Type.Ret != nil &&
		sig.Type.Ret.Kind != types.Void && sig.Type.Ret.Kind != types.Invalid {
		if ctl == ctlReturn && ret != nil {
			// Promote the returned value to the declared return type
			// (an int returned from a float function arrives as float)
			// so a call result's representation always matches its
			// static type under both engines.
			ret = promoteScalar(sig.Type.Ret, ret)
		} else if ctl != ctlReturn {
			// A non-void function that falls off its end yields the
			// declared type's zero value, deterministically, under
			// both engines.
			ret = ZeroValue(sig.Type.Ret)
		}
	}
	if ctl == ctlReturn && ret != nil {
		// Keep the return value alive across the frame teardown; the
		// reference is released by the caller's enclosing statement.
		c.escapeRef(ret)
	}
	cc.releasePending(0)
	cc.popFrame(f)
	return ret, nil
}

// execStmt executes one statement. Escape references created while the
// statement runs are released when it completes (unless it returns,
// in which case callFunction handles them).
func (c *ctx) execStmt(s ast.Stmt) (control, any, error) {
	if err := c.step(s); err != nil {
		return ctlNone, nil, err
	}
	mark := len(c.pending)
	ctl, v, err := c.execStmtInner(s)
	if ctl != ctlReturn {
		c.releasePending(mark)
	}
	return ctl, v, err
}

func (c *ctx) execStmtInner(s ast.Stmt) (control, any, error) {
	switch s := s.(type) {
	case nil:
		return ctlNone, nil, nil
	case *ast.BlockStmt:
		f := newFrame(c.frame)
		saved := c.frame
		c.frame = f
		pop := func(ctl control, v any) {
			if ctl == ctlReturn && v != nil {
				// A returned value may be (or contain) a matrix bound
				// in this block; keep it alive across the frame pop.
				// callFunction takes the caller's own reference before
				// releasing this pending one.
				c.escapeRef(v)
			}
			c.popFrame(f)
			c.frame = saved
		}
		for _, st := range s.Stmts {
			ctl, v, err := c.execStmt(st)
			if err != nil || ctl != ctlNone {
				pop(ctl, v)
				return ctl, v, err
			}
		}
		pop(ctlNone, nil)
		return ctlNone, nil, nil

	case *ast.DeclStmt:
		ty, err := types.FromAST(s.Type)
		if err != nil {
			return ctlNone, nil, wrap(s, err)
		}
		var v any
		if s.Init != nil {
			v, err = c.evalExpr(s.Init)
			if err != nil {
				return ctlNone, nil, err
			}
			v, err = c.coerceToType(s, ty, v)
			if err != nil {
				return ctlNone, nil, err
			}
		} else {
			v = zeroValue(s.Type)
		}
		c.bindValue(v)
		c.frame.vars[s.Name] = &binding{v: v, ty: ty}
		return ctlNone, nil, nil

	case *ast.AssignStmt:
		rhs, err := c.evalExpr(s.RHS)
		if err != nil {
			return ctlNone, nil, err
		}
		if len(s.LHS) == 1 {
			return ctlNone, nil, c.assignTo(s.LHS[0], rhs)
		}
		tup, ok := rhs.([]any)
		if !ok || len(tup) != len(s.LHS) {
			return ctlNone, nil, rerr(s, "destructuring assignment requires a %d-tuple", len(s.LHS))
		}
		for k, l := range s.LHS {
			if err := c.assignTo(l, tup[k]); err != nil {
				return ctlNone, nil, err
			}
		}
		return ctlNone, nil, nil

	case *ast.IfStmt:
		cond, err := c.evalBool(s.Cond)
		if err != nil {
			return ctlNone, nil, err
		}
		if cond {
			return c.execStmt(s.Then)
		}
		if s.Else != nil {
			return c.execStmt(s.Else)
		}
		return ctlNone, nil, nil

	case *ast.WhileStmt:
		for {
			cond, err := c.evalBool(s.Cond)
			if err != nil {
				return ctlNone, nil, err
			}
			if !cond {
				return ctlNone, nil, nil
			}
			ctl, v, err := c.execStmt(s.Body)
			if err != nil {
				return ctlNone, nil, err
			}
			switch ctl {
			case ctlBreak:
				return ctlNone, nil, nil
			case ctlReturn:
				return ctl, v, nil
			}
		}

	case *ast.ForStmt:
		f := newFrame(c.frame)
		saved := c.frame
		c.frame = f
		pop := func(ctl control, v any) {
			if ctl == ctlReturn && v != nil {
				c.escapeRef(v) // see BlockStmt
			}
			c.popFrame(f)
			c.frame = saved
		}
		if s.Init != nil {
			if _, _, err := c.execStmt(s.Init); err != nil {
				pop(ctlNone, nil)
				return ctlNone, nil, err
			}
		}
		for {
			cond := true
			if s.Cond != nil {
				var err error
				cond, err = c.evalBool(s.Cond)
				if err != nil {
					pop(ctlNone, nil)
					return ctlNone, nil, err
				}
			}
			if !cond {
				pop(ctlNone, nil)
				return ctlNone, nil, nil
			}
			ctl, v, err := c.execStmt(s.Body)
			if err != nil {
				pop(ctlNone, nil)
				return ctlNone, nil, err
			}
			if ctl == ctlBreak {
				pop(ctlNone, nil)
				return ctlNone, nil, nil
			}
			if ctl == ctlReturn {
				pop(ctl, v)
				return ctl, v, nil
			}
			if s.Post != nil {
				if _, _, err := c.execStmt(s.Post); err != nil {
					pop(ctlNone, nil)
					return ctlNone, nil, err
				}
			}
		}

	case *ast.ReturnStmt:
		if s.Value == nil {
			return ctlReturn, nil, nil
		}
		v, err := c.evalExpr(s.Value)
		if err != nil {
			return ctlNone, nil, err
		}
		return ctlReturn, v, nil

	case *ast.ExprStmt:
		_, err := c.evalExpr(s.X)
		return ctlNone, nil, err

	case *ast.BreakStmt:
		return ctlBreak, nil, nil
	case *ast.ContinueStmt:
		return ctlContinue, nil, nil

	case *ast.SpawnStmt:
		return ctlNone, nil, c.execSpawn(s)
	case *ast.SyncStmt:
		return ctlNone, nil, c.syncFutures()
	}
	return ctlNone, nil, rerr(s, "unknown statement %T", s)
}

// assignTo stores v into an lvalue (identifier or indexed matrix).
func (c *ctx) assignTo(lhs ast.Expr, v any) error {
	switch l := lhs.(type) {
	case *ast.Ident:
		b, ok := c.frame.lookup(l.Name)
		if !ok {
			return rerr(l, "undeclared variable %q", l.Name)
		}
		cv, err := c.coerceToType(l, b.ty, v)
		if err != nil {
			return err
		}
		c.bindValue(cv)
		c.releaseValue(b.v)
		b.v = cv
		return nil
	case *ast.IndexExpr:
		baseV, err := c.evalExpr(l.X)
		if err != nil {
			return err
		}
		m, ok := baseV.(*matrix.Matrix)
		if !ok || m == nil {
			return rerr(l, "cannot index-assign into a non-matrix or unassigned matrix")
		}
		specs, err := c.indexSpecs(l, m)
		if err != nil {
			return err
		}
		return wrap(l, m.SetIndex(v, specs...))
	}
	return rerr(lhs, "cannot assign to %s", ast.ExprString(lhs))
}

func (c *ctx) evalBool(e ast.Expr) (bool, error) {
	v, err := c.evalExpr(e)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, rerr(e, "condition evaluated to %T, not bool", v)
	}
	return b, nil
}

func (c *ctx) evalInt(e ast.Expr) (int64, error) {
	v, err := c.evalExpr(e)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, rerr(e, "expected an int value, got %T", v)
	}
	return n, nil
}

var binToMatrixOp = map[ast.BinOp]matrix.Op{
	ast.OpAdd: matrix.OpAdd, ast.OpSub: matrix.OpSub,
	ast.OpMul: matrix.OpMul, ast.OpElemMul: matrix.OpMul,
	ast.OpDiv: matrix.OpDiv, ast.OpMod: matrix.OpMod,
	ast.OpEq: matrix.OpEq, ast.OpNe: matrix.OpNe,
	ast.OpLt: matrix.OpLt, ast.OpLe: matrix.OpLe,
	ast.OpGt: matrix.OpGt, ast.OpGe: matrix.OpGe,
	ast.OpAnd: matrix.OpAnd, ast.OpOr: matrix.OpOr,
}

func (c *ctx) evalExpr(e ast.Expr) (any, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.FloatLit:
		return e.Value, nil
	case *ast.BoolLit:
		return e.Value, nil
	case *ast.StrLit:
		return e.Value, nil

	case *ast.Ident:
		b, ok := c.frame.lookup(e.Name)
		if !ok {
			return nil, rerr(e, "undeclared variable %q", e.Name)
		}
		return b.v, nil

	case *ast.BinaryExpr:
		// Short-circuit scalar && / ||.
		if e.Op == ast.OpAnd || e.Op == ast.OpOr {
			l, err := c.evalExpr(e.L)
			if err != nil {
				return nil, err
			}
			if lb, ok := l.(bool); ok {
				if e.Op == ast.OpAnd && !lb {
					return false, nil
				}
				if e.Op == ast.OpOr && lb {
					return true, nil
				}
				r, err := c.evalExpr(e.R)
				if err != nil {
					return nil, err
				}
				rb, ok := r.(bool)
				if !ok {
					return nil, rerr(e, "operator %s requires bool operands", e.Op)
				}
				return rb, nil
			}
			r, err := c.evalExpr(e.R)
			if err != nil {
				return nil, err
			}
			return c.binaryVals(e, l, r)
		}
		l, err := c.evalExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.evalExpr(e.R)
		if err != nil {
			return nil, err
		}
		return c.binaryVals(e, l, r)

	case *ast.UnaryExpr:
		v, err := c.evalExpr(e.X)
		if err != nil {
			return nil, err
		}
		return EvalUnary(e, v, c.exec())

	case *ast.CastExpr:
		v, err := c.evalExpr(e.X)
		if err != nil {
			return nil, err
		}
		return castScalar(e, e.To, v)

	case *ast.CallExpr:
		return c.evalCall(e)

	case *ast.IndexExpr:
		baseV, err := c.evalExpr(e.X)
		if err != nil {
			return nil, err
		}
		m, ok := baseV.(*matrix.Matrix)
		if !ok || m == nil {
			return nil, rerr(e, "cannot index a non-matrix or unassigned matrix")
		}
		specs, err := c.indexSpecs(e, m)
		if err != nil {
			return nil, err
		}
		v, err := m.Index(specs...)
		return v, wrap(e, err)

	case *ast.EndExpr:
		if len(c.end) == 0 {
			return nil, rerr(e, "'end' used outside an index expression")
		}
		return c.end[len(c.end)-1], nil

	case *ast.RangeExpr:
		lo, err := c.evalInt(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.evalInt(e.Hi)
		if err != nil {
			return nil, err
		}
		if hi >= lo {
			if err := c.charge(e, hi-lo+1); err != nil {
				return nil, err
			}
		}
		return matrix.Range(lo, hi), nil

	case *ast.TupleExpr:
		out := make([]any, len(e.Elems))
		for k, el := range e.Elems {
			v, err := c.evalExpr(el)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil

	case *ast.WithLoop:
		return c.evalWithLoop(e)

	case *ast.MatrixMap:
		return c.evalMatrixMap(e)

	case *ast.InitExpr:
		dims := make([]int, len(e.Dims))
		for k, d := range e.Dims {
			n, err := c.evalInt(d)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, rerr(e, "init dimension %d is negative (%d)", k, n)
			}
			dims[k] = int(n)
		}
		elem, err := matrixElemOf(e, types.MustFrom(e.Type))
		if err != nil {
			return nil, err
		}
		m, err := matrix.NewBudgeted(c.i.budget, elem, dims...)
		return m, wrap(e, err)
	}
	return nil, rerr(e, "unknown expression %T", e)
}

// binaryVals applies a binary operator to evaluated operands.
func (c *ctx) binaryVals(e *ast.BinaryExpr, l, r any) (any, error) {
	return EvalBinary(e, l, r, c.exec())
}

// EvalBinary applies a binary operator to evaluated operands, choosing
// among scalar, broadcast, elementwise and matmul forms (§III-A.2).
// Exported so alternate engines share one operator semantics,
// including the kernel-temporary recycling of chained expressions.
func EvalBinary(e *ast.BinaryExpr, l, r any, x matrix.Exec) (any, error) {
	lm, lIsM := l.(*matrix.Matrix)
	rm, rIsM := r.(*matrix.Matrix)
	if lIsM && lm == nil || rIsM && rm == nil {
		return nil, rerr(e, "use of unassigned matrix")
	}
	op, ok := binToMatrixOp[e.Op]
	if !ok {
		return nil, rerr(e, "unknown operator %s", e.Op)
	}
	switch {
	case lIsM && rIsM:
		if e.Op == ast.OpMul {
			out, err := matrix.MatMulExec(lm, rm, x)
			recycleTemps(e, lm, rm)
			return out, wrap(e, err)
		}
		out, err := matrix.ElementwiseExec(op, lm, rm, x)
		recycleTemps(e, lm, rm)
		return out, wrap(e, err)
	case lIsM:
		out, err := matrix.BroadcastExec(op, lm, r, true, x)
		recycleTemps(e, lm, nil)
		return out, wrap(e, err)
	case rIsM:
		out, err := matrix.BroadcastExec(op, rm, l, false, x)
		recycleTemps(e, nil, rm)
		return out, wrap(e, err)
	default:
		v, err := matrix.ScalarBinary(op, l, r)
		return v, wrap(e, err)
	}
}

// EvalUnary applies a unary operator to an evaluated operand; exported
// so alternate engines share one operator semantics.
func EvalUnary(e *ast.UnaryExpr, v any, x matrix.Exec) (any, error) {
	if m, ok := v.(*matrix.Matrix); ok {
		out, err := matrix.UnaryExec(e.Op == ast.OpNeg, m, x)
		if kernelTemp(e.X, m) {
			m.Recycle()
		}
		return out, wrap(e, err)
	}
	switch s := v.(type) {
	case int64:
		if e.Op == ast.OpNeg {
			return -s, nil
		}
	case float64:
		if e.Op == ast.OpNeg {
			return -s, nil
		}
	case bool:
		if e.Op == ast.OpNot {
			return !s, nil
		}
	}
	return nil, rerr(e, "operator %s cannot be applied to %T", e.Op, v)
}

// kernelTemp reports whether m is an expression temporary produced by
// an arithmetic kernel: a matrix the rc discipline never saw (Hdr ==
// nil) whose source expression is itself a compound operator. Kernels
// always allocate their result fresh, so such a value is unaliased and
// its only reference is the operand slot currently being consumed —
// which makes it safe to recycle the backing storage the moment the
// enclosing operator has read it. Idents, index results and call
// results are never recycled here: their values may be bound, cached,
// or otherwise shared.
func kernelTemp(src ast.Expr, m *matrix.Matrix) bool {
	if m == nil || m.Hdr != nil {
		return false
	}
	switch src.(type) {
	case *ast.BinaryExpr, *ast.UnaryExpr:
		return true
	}
	return false
}

// recycleTemps returns the backing buffers of spent kernel temporaries
// to the free list after a binary operator consumed them, so a chained
// expression like (a+b).*c reuses the a+b buffer for its own result
// instead of allocating a third matrix.
func recycleTemps(e *ast.BinaryExpr, lm, rm *matrix.Matrix) {
	lt := lm != nil && kernelTemp(e.L, lm)
	if lt {
		lm.Recycle()
	}
	if rm != nil && rm != lm && kernelTemp(e.R, rm) {
		rm.Recycle()
	}
}

func castScalar(n ast.Node, to ast.PrimKind, v any) (any, error) {
	switch to {
	case ast.PrimInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		}
	case ast.PrimFloat:
		switch x := v.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case bool:
			if x {
				return 1.0, nil
			}
			return 0.0, nil
		}
	case ast.PrimBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		case float64:
			return x != 0, nil
		}
	}
	return nil, rerr(n, "cannot cast %T to %s", v, to)
}

// indexSpecs evaluates the index arguments of e against matrix m,
// binding 'end' per dimension (§III-A.3).
func (c *ctx) indexSpecs(e *ast.IndexExpr, m *matrix.Matrix) ([]matrix.IndexSpec, error) {
	if len(e.Args) != m.Rank() {
		return nil, rerr(e, "matrix of rank %d requires %d index expression(s), got %d",
			m.Rank(), m.Rank(), len(e.Args))
	}
	specs := make([]matrix.IndexSpec, len(e.Args))
	for d, arg := range e.Args {
		size, err := m.DimSize(d)
		if err != nil {
			return nil, wrap(e, err)
		}
		c.end = append(c.end, int64(size-1))
		spec, err := c.oneIndexSpec(arg)
		c.end = c.end[:len(c.end)-1]
		if err != nil {
			return nil, err
		}
		specs[d] = spec
	}
	return specs, nil
}

func (c *ctx) oneIndexSpec(arg ast.IndexArg) (matrix.IndexSpec, error) {
	switch a := arg.(type) {
	case *ast.IdxScalar:
		v, err := c.evalExpr(a.X)
		if err != nil {
			return matrix.IndexSpec{}, err
		}
		switch x := v.(type) {
		case int64:
			return matrix.Scalar(int(x)), nil
		case *matrix.Matrix:
			return matrix.Mask(x), nil
		}
		return matrix.IndexSpec{}, rerr(a, "index must be an int or a bool matrix, got %T", v)
	case *ast.IdxRange:
		lo, err := c.evalInt(a.Lo)
		if err != nil {
			return matrix.IndexSpec{}, err
		}
		hi, err := c.evalInt(a.Hi)
		if err != nil {
			return matrix.IndexSpec{}, err
		}
		return matrix.Span(int(lo), int(hi)), nil
	case *ast.IdxAll:
		return matrix.All(), nil
	}
	return matrix.IndexSpec{}, rerr(arg, "unknown index argument %T", arg)
}

// evalWithLoop executes a with-loop (§III-A.4) on the pool; bodies run
// in child contexts with parallelism disabled, so nests parallelize
// the outermost construct only, as in the generated C.
func (c *ctx) evalWithLoop(w *ast.WithLoop) (any, error) {
	lower := make([]int, len(w.Lower))
	upper := make([]int, len(w.Upper))
	for k := range w.Lower {
		lo, err := c.evalInt(w.Lower[k])
		if err != nil {
			return nil, err
		}
		hi, err := c.evalInt(w.Upper[k])
		if err != nil {
			return nil, err
		}
		lower[k], upper[k] = int(lo), int(hi)
	}
	body := func(op ast.Expr) matrix.BodyFunc {
		return func(idx []int) (any, error) {
			if err := c.checkCancel(op); err != nil {
				return nil, err
			}
			f := newFrame(c.frame)
			for k, id := range w.Ids {
				f.vars[id] = &binding{v: int64(idx[k]), ty: types.IntT}
			}
			cc := c.child(f, nil)
			v, err := cc.evalExpr(op)
			if err != nil {
				cc.releasePending(0)
				return nil, err
			}
			cc.releasePending(0)
			return v, nil
		}
	}
	switch op := w.Op.(type) {
	case *ast.GenArrayOp:
		shape := make([]int, len(op.Shape))
		for k, se := range op.Shape {
			n, err := c.evalInt(se)
			if err != nil {
				return nil, err
			}
			shape[k] = int(n)
		}
		elem, err := matrixElemOf(w, c.i.info.TypeOf(w))
		if err != nil {
			return nil, err
		}
		out, err := matrix.GenArrayExec(elem, lower, upper, shape, body(op.Body), c.exec())
		return out, wrap(w, err)
	case *ast.FoldOp:
		base, err := c.evalExpr(op.Init)
		if err != nil {
			return nil, err
		}
		kind := map[ast.FoldKind]matrix.FoldKind{
			ast.FoldAdd: matrix.FoldAdd, ast.FoldMul: matrix.FoldMul,
			ast.FoldMin: matrix.FoldMin, ast.FoldMax: matrix.FoldMax,
		}[op.Kind]
		// Promote the base to float when the loop's static type is
		// float, so int literals fold correctly with float bodies.
		if ty := c.i.info.TypeOf(w); ty.Kind == types.Float {
			if iv, ok := base.(int64); ok {
				base = float64(iv)
			}
		}
		out, err := matrix.FoldExec(kind, base, lower, upper, body(op.Body), c.exec())
		return out, wrap(w, err)
	}
	return nil, rerr(w, "unknown with-loop operation %T", w.Op)
}

// evalMatrixMap executes matrixMap(f, m, dims) (§III-A.5) in parallel
// over the unmapped dimensions.
func (c *ctx) evalMatrixMap(e *ast.MatrixMap) (any, error) {
	argV, err := c.evalExpr(e.Arg)
	if err != nil {
		return nil, err
	}
	m, ok := argV.(*matrix.Matrix)
	if !ok || m == nil {
		return nil, rerr(e, "matrixMap requires a matrix argument")
	}
	dims := make([]int, len(e.Dims))
	for k, d := range e.Dims {
		lit, ok := d.(*ast.IntLit)
		if !ok {
			return nil, rerr(d, "matrixMap dimensions must be integer literals")
		}
		dims[k] = int(lit.Value)
	}
	sig, ok := c.i.info.Funcs[e.Fun]
	if !ok {
		return nil, rerr(e, "undeclared function %q", e.Fun)
	}
	outElem, err := matrixElemOf(e, c.i.info.TypeOf(e))
	if err != nil {
		return nil, err
	}
	mapF := func(sub *matrix.Matrix) (*matrix.Matrix, error) {
		cc := c.child(c.frame, nil)
		v, err := cc.callFunction(sig.Decl, []any{sub}, e)
		if err != nil {
			cc.releasePending(0)
			return nil, err
		}
		res, ok := v.(*matrix.Matrix)
		if !ok || res == nil {
			cc.releasePending(0)
			return nil, rerr(e, "matrixMap function %q returned %T, want a matrix", e.Fun, v)
		}
		// The result is copied into the output before the escape
		// reference is dropped, so this release is safe.
		out := res.Copy()
		cc.releasePending(0)
		return out, nil
	}
	if e.General {
		out, err := matrix.MatrixMapGExec(m, dims, outElem, mapF, c.exec())
		return out, wrap(e, err)
	}
	out, err := matrix.MatrixMapExec(m, dims, outElem, mapF, c.exec())
	return out, wrap(e, err)
}

// matrixElemOf maps a static matrix type to the runtime element kind.
func matrixElemOf(n ast.Node, ty *types.Type) (matrix.Elem, error) {
	if ty == nil || ty.Kind != types.Matrix {
		return 0, rerr(n, "internal error: expected a matrix type, have %s", ty)
	}
	switch ty.Elem.Kind {
	case types.Float:
		return matrix.Float, nil
	case types.Int:
		return matrix.Int, nil
	case types.Bool:
		return matrix.Bool, nil
	}
	return 0, rerr(n, "internal error: bad matrix element type %s", ty.Elem)
}

// evalCall dispatches builtin and user function calls.
func (c *ctx) evalCall(e *ast.CallExpr) (any, error) {
	args := make([]any, len(e.Args))
	for k, a := range e.Args {
		v, err := c.evalExpr(a)
		if err != nil {
			return nil, err
		}
		args[k] = v
	}
	if sig, ok := c.i.info.Funcs[e.Fun]; ok {
		return c.callFunction(sig.Decl, args, e)
	}
	return c.evalBuiltin(e, args)
}
