package interp

import (
	"path/filepath"
	"testing"

	"repro/internal/matio"
	"repro/internal/matrix"
)

// readMatrix/writeMatrix against real files (the cmd/cmrun path).
func TestFileIOThroughDirectory(t *testing.T) {
	dir := t.TempDir()
	in := matrix.FromFloats([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err := matio.WriteFile(filepath.Join(dir, "in.data"), in); err != nil {
		t.Fatal(err)
	}
	code, _ := mustRun(t, `
int main() {
	Matrix float <2> m = readMatrix("in.data");
	Matrix float <2> doubled = m .* 2.0;
	writeMatrix("out.data", doubled);
	return (int)doubled[1, 2];
}`, Options{Dir: dir})
	if code != 12 {
		t.Fatalf("exit = %d, want 12", code)
	}
	out, err := matio.ReadFile(filepath.Join(dir, "out.data"))
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromFloats([]float64{2, 4, 6, 8, 10, 12}, 2, 3)
	if !matrix.Equal(out, want) {
		t.Fatalf("out = %v", out)
	}
}

func TestFileIOMissingFileErrors(t *testing.T) {
	_, _, _, err := run(t, `
int main() {
	Matrix float <1> m = readMatrix("absent.data");
	return 0;
}`, Options{Dir: t.TempDir()})
	if err == nil {
		t.Fatal("missing file should be a runtime error")
	}
}

func TestFilesTakePrecedenceOverDir(t *testing.T) {
	dir := t.TempDir()
	onDisk := matrix.FromFloats([]float64{9}, 1)
	if err := matio.WriteFile(filepath.Join(dir, "x.data"), onDisk); err != nil {
		t.Fatal(err)
	}
	inMem := matrix.FromFloats([]float64{5}, 1)
	code, _ := mustRun(t, `
int main() {
	Matrix float <1> m = readMatrix("x.data");
	return (int)m[0];
}`, Options{Dir: dir, Files: map[string]*matrix.Matrix{"x.data": inMem}})
	if code != 5 {
		t.Fatalf("exit = %d; in-memory file should win", code)
	}
}

func TestReadMatrixIsolatesCallerCopy(t *testing.T) {
	// mutating a matrix read from Files must not corrupt the provided
	// input for later runs.
	orig := matrix.FromFloats([]float64{1, 2}, 2)
	files := map[string]*matrix.Matrix{"x.data": orig}
	mustRun(t, `
int main() {
	Matrix float <1> m = readMatrix("x.data");
	m[0] = 99.0;
	return 0;
}`, Options{Files: files})
	if orig.Floats()[0] != 1 {
		t.Fatal("readMatrix must hand out a copy of the in-memory input")
	}
}
