package interp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// run parses, checks and executes src, returning exit code, stdout,
// the interpreter (for heap inspection) and any runtime error.
func run(t *testing.T, src string, opts Options) (int, string, *Interp, error) {
	t.Helper()
	var d source.Diagnostics
	prog := parser.ParseFile("t.xc", src, parser.AllExtensions(), &d)
	if prog == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	info := sem.Check(prog, &d)
	if d.HasErrors() {
		t.Fatalf("check failed:\n%s", d.String())
	}
	var out bytes.Buffer
	opts.Stdout = &out
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	i := New(prog, info, opts)
	defer i.Close()
	code, err := i.Run()
	return code, out.String(), i, err
}

// mustRun asserts successful execution and a leak-free RC heap.
func mustRun(t *testing.T, src string, opts Options) (int, string) {
	t.Helper()
	code, out, i, err := run(t, src, opts)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if err := i.Heap().CheckLeaks(); err != nil {
		t.Fatalf("reference counting leak: %v", err)
	}
	return code, out
}

func TestReturnCode(t *testing.T) {
	code, _ := mustRun(t, `int main() { return 41 + 1; }`, Options{})
	if code != 42 {
		t.Errorf("exit code = %d", code)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	code, out := mustRun(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	int acc = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) { continue; }
		acc = acc + i;
	}
	while (acc > 26) { acc--; }
	print(fib(10));
	return acc;
}`, Options{})
	if code != 25 {
		t.Errorf("exit = %d, want 25", code)
	}
	if strings.TrimSpace(out) != "55" {
		t.Errorf("out = %q", out)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	_, out := mustRun(t, `
int main() {
	float x = (1.0 - 5.0) / (float)(0 - 2);
	print(x);
	print((int)x);
	print((float)3);
	return 0;
}`, Options{})
	if out != "2\n2\n3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTuples(t *testing.T) {
	code, _ := mustRun(t, `
(int, int, bool) divmod(int a, int b) {
	return (a / b, a % b, a % b == 0);
}
int main() {
	int q; int r; bool exact;
	(q, r, exact) = divmod(17, 5);
	if (exact) return 99;
	return q * 10 + r;
}`, Options{})
	if code != 32 {
		t.Errorf("exit = %d, want 32", code)
	}
}

func TestRcExtension(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	refcounted int * p = rcnew(40);
	rcset(p, rcget(p) + 2);
	return rcget(p);
}`, Options{})
	if code != 42 {
		t.Errorf("exit = %d", code)
	}
}

func TestMatrixBasics(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix int <2> m = init(Matrix int <2>, 3, 3);
	m[1, 1] = 5;
	m[0, 2] = 7;
	Matrix int <2> twice = m .* 2;
	return twice[1, 1] + twice[0, 2];
}`, Options{})
	if code != 24 {
		t.Errorf("exit = %d, want 24", code)
	}
}

func TestMatMulVsElemMul(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix int <2> a = init(Matrix int <2>, 2, 2);
	a[0, 0] = 1; a[0, 1] = 2; a[1, 0] = 3; a[1, 1] = 4;
	Matrix int <2> mm = a * a;    // linear algebra: [[7,10],[15,22]]
	Matrix int <2> em = a .* a;   // elementwise: [[1,4],[9,16]]
	return mm[0, 0] * 100 + em[1, 1];
}`, Options{})
	if code != 716 {
		t.Errorf("exit = %d, want 716", code)
	}
}

func TestEndAndRanges(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix int <1> v = [10 :: 19];
	int last = v[end];
	Matrix int <1> tail = v[end - 2 : end];
	Matrix int <1> slice = v[2 :: 4];
	return last + tail[0] + slice[0];
}`, Options{})
	if code != 19+17+12 {
		t.Errorf("exit = %d, want %d", code, 19+17+12)
	}
}

func TestLogicalIndexing(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix int <1> v = [0 :: 9];
	Matrix int <1> odds = v[v % 2 == 1];
	int n = dimSize(odds, 0);
	return n * 100 + (int)odds[0] + (int)odds[end];
}`, Options{})
	if code != 500+1+9 {
		t.Errorf("exit = %d, want %d", code, 510)
	}
}

func TestFig1TemporalMean(t *testing.T) {
	const m, n, p = 5, 6, 7
	ssh := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(7))
	fl := ssh.Floats()
	for k := range fl {
		fl[k] = r.Float64() * 4
	}
	files := map[string]*matrix.Matrix{"ssh.data": ssh}
	_, _ = mustRun(t, `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}`, Options{Files: files})
	got := files["means.data"]
	if got == nil {
		t.Fatal("means.data not written")
	}
	want := matrix.New(matrix.Float, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < p; k++ {
				acc += fl[i*n*p+j*p+k]
			}
			want.Floats()[i*n+j] = acc / p
		}
	}
	if !matrix.AlmostEqual(got, want, 1e-9) {
		t.Fatal("temporal mean differs from Fig 3 reference")
	}
}

func TestFig1ParallelMatchesSequential(t *testing.T) {
	ssh := matrix.New(matrix.Float, 6, 5, 8)
	r := rand.New(rand.NewSource(3))
	for k := range ssh.Floats() {
		ssh.Floats()[k] = r.NormFloat64()
	}
	src := `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}`
	seqFiles := map[string]*matrix.Matrix{"ssh.data": ssh}
	parFiles := map[string]*matrix.Matrix{"ssh.data": ssh}
	mustRun(t, src, Options{Files: seqFiles})
	mustRun(t, src, Options{Files: parFiles, Threads: 4})
	if !matrix.Equal(seqFiles["means.data"], parFiles["means.data"]) {
		t.Fatal("parallel with-loop result differs from sequential")
	}
}

func TestMatrixMapProgram(t *testing.T) {
	data := matrix.New(matrix.Float, 3, 4, 5)
	for k := range data.Floats() {
		data.Floats()[k] = float64(k)
	}
	files := map[string]*matrix.Matrix{"d.data": data}
	mustRun(t, `
Matrix float <1> double(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return with ([0] <= [i] < [n]) genarray([n], ts[i] * 2.0);
}
int main() {
	Matrix float <3> d = readMatrix("d.data");
	Matrix float <3> out;
	out = matrixMap(double, d, [2]);
	writeMatrix("out.data", out);
	return 0;
}`, Options{Files: files, Threads: 3})
	out := files["out.data"]
	for k, v := range data.Floats() {
		if out.Floats()[k] != 2*v {
			t.Fatalf("out[%d] = %v, want %v", k, out.Floats()[k], 2*v)
		}
	}
}

func TestWholeDimAndMaskAssignment(t *testing.T) {
	dates := matrix.FromInts([]int64{19990101, 20000101, 20010101}, 3)
	ssh := matrix.New(matrix.Float, 2, 2, 3)
	for k := range ssh.Floats() {
		ssh.Floats()[k] = float64(k)
	}
	files := map[string]*matrix.Matrix{"ssh.data": ssh, "dates.data": dates}
	mustRun(t, `
int main() {
	Matrix float <3> ssh = readMatrix("ssh.data");
	Matrix int <1> dates = readMatrix("dates.data");
	Matrix float <3> recent = ssh[:, :, dates >= 20000101];
	writeMatrix("recent.data", recent);
	return 0;
}`, Options{Files: files})
	recent := files["recent.data"]
	if recent.Rank() != 3 || recent.Shape()[2] != 2 {
		t.Fatalf("recent shape = %v", recent.Shape())
	}
	// column 0 dropped; entries with k=1,2 kept
	if recent.Floats()[0] != ssh.Floats()[1] {
		t.Errorf("recent[0] = %v", recent.Floats()[0])
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"index oob", `int main() {
			Matrix int <1> v = [0 :: 4];
			return (int)v[9]; }`, "out of range"},
		{"div zero", `int main() { int z = 0; return 1 / z; }`, "division by zero"},
		{"readMatrix type", `int main() {
			Matrix float <2> m = readMatrix("ssh.data");
			return 0; }`, "cannot hold"},
		{"genarray superset", `int main() {
			int n = 10;
			Matrix float <1> m;
			m = with ([0] <= [i] < [n]) genarray([5], 1.0);
			return 0; }`, "superset"},
		{"missing file", `int main() {
			Matrix float <1> m = readMatrix("nope.data");
			return 0; }`, "no matrix"},
		{"unassigned matrix", `int main() {
			Matrix float <1> m;
			return (int)m[0]; }`, "unassigned"},
		{"infinite recursion", `int f(int x) { return f(x); } int main() { return f(1); }`, "stack"},
		{"bad range", `int main() {
			Matrix int <1> v = [0 :: 9];
			Matrix int <1> w = v[5 : 2];
			return 0; }`, "range"},
	}
	ssh := matrix.New(matrix.Float, 2, 2, 2)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, _, err := run(t, c.src, Options{
				Files: map[string]*matrix.Matrix{"ssh.data": ssh}})
			if err == nil {
				t.Fatalf("expected runtime error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestMaxStepsGuard(t *testing.T) {
	_, _, _, err := run(t, `int main() { while (true) { } return 0; }`,
		Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("runaway loop should hit the step limit: %v", err)
	}
}

func TestGlobals(t *testing.T) {
	code, _ := mustRun(t, `
int counter = 10;
int bump(int by) {
	counter = counter + by;
	return counter;
}
int main() {
	bump(5);
	bump(7);
	return counter;
}`, Options{})
	if code != 22 {
		t.Errorf("exit = %d, want 22", code)
	}
}

func TestMatrixAliasingSemantics(t *testing.T) {
	// Assignment of a matrix variable aliases (reference semantics,
	// like the RC pointers the implementation is built on, §III-B).
	code, _ := mustRun(t, `
int main() {
	Matrix int <1> a = init(Matrix int <1>, 3);
	Matrix int <1> b = a;
	b[0] = 9;
	return (int)a[0];
}`, Options{})
	if code != 9 {
		t.Errorf("exit = %d, want 9 (aliasing)", code)
	}
}

func TestIndexedStoreOfSlice(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix float <1> scores = init(Matrix float <1>, 6);
	Matrix float <1> area = init(Matrix float <1>, 3);
	area[0] = 1.5; area[1] = 2.5; area[2] = 3.5;
	scores[2 : 4] = area;
	return (int)(scores[2] + scores[3] + scores[4]);
}`, Options{})
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestScoreTSStructure(t *testing.T) {
	// A condensed version of Fig 8's trough scoring on a known series.
	ts := matrix.FromFloats([]float64{1, 2, 1.5, 1, 1.5, 2, 1}, 7)
	files := map[string]*matrix.Matrix{"ts.data": ts}
	mustRun(t, `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}
Matrix float <1> computeArea(Matrix float <1> aoi) {
	float y1 = aoi[0];
	float y2 = aoi[end];
	int x1 = 0;
	int x2 = dimSize(aoi, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - aoi[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}
int main() {
	Matrix float <1> ts = readMatrix("ts.data");
	Matrix float <1> trough;
	int b = 0;
	int i = 1;
	(trough, b, i) = getTrough(ts, i);
	Matrix float <1> scores = computeArea(trough);
	writeMatrix("scores.data", scores);
	return i * 10 + b;
}`, Options{Files: files})
	scores := files["scores.data"]
	if scores == nil || scores.Size() != 5 {
		t.Fatalf("scores = %v", scores)
	}
	// trough 2,1.5,1,1.5,2 under the line 2..2: area = (0+0.5+1+0.5+0) = 2
	if v := scores.Floats()[0]; v < 1.99 || v > 2.01 {
		t.Errorf("area = %v, want 2", v)
	}
}

func TestFoldMinMaxFloat(t *testing.T) {
	code, _ := mustRun(t, `
int main() {
	Matrix float <1> v = init(Matrix float <1>, 4);
	v[0] = 3.5; v[1] = -1.25; v[2] = 9.0; v[3] = 0.5;
	float mx = with ([0] <= [i] < [4]) fold(max, -1000.0, v[i]);
	float mn = with ([0] <= [i] < [4]) fold(min, 1000.0, v[i]);
	return (int)(mx * 4.0) + (int)(mn * 4.0);
}`, Options{})
	if code != 36-5 {
		t.Errorf("exit = %d, want 31", code)
	}
}

func TestPrintMatrix(t *testing.T) {
	_, out := mustRun(t, `
int main() {
	Matrix int <1> v = [1 :: 3];
	print(v);
	return 0;
}`, Options{})
	if !strings.Contains(out, "Matrix int") {
		t.Errorf("out = %q", out)
	}
}

// The interpreter must reject programs sem would reject; belt and
// braces for the pipeline used by cmd/cmrun.
func TestPipelineRejectsBadPrograms(t *testing.T) {
	var d source.Diagnostics
	prog := parser.ParseFile("t.xc", `int main() { return x; }`, parser.AllExtensions(), &d)
	if prog == nil {
		t.Fatal("parse should succeed")
	}
	sem.Check(prog, &d)
	if !d.HasErrors() {
		t.Fatal("sem should reject undeclared variable")
	}
}

var _ = ast.Print
