// Code generation for the Cilk extension (§VIII): each spawn site
// lifts into an argument struct, a pthread wrapper and a finalizer;
// a small per-thread task list implements sync (join + finalize) and
// the implicit sync at function exit. This is the "sophisticated
// run-time delivered as a pluggable language extension" the paper's
// future work describes, in its simplest honest form (one thread per
// spawn; a work-stealing scheduler would slot in behind cm_spawn_push
// without changing the generated call sites).
package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/types"
)

// cilkRuntime is appended to the prelude when a program uses spawn.
const cilkRuntime = `
/* ---- Cilk extension mini-runtime ---- */
typedef struct { pthread_t tid; void *args; void (*fini)(void *); } cm_task;
#define CM_MAX_TASKS 4096
static __thread cm_task cm_tasks[CM_MAX_TASKS];
static __thread int cm_ntasks = 0;
static void cm_spawn_push(pthread_t tid, void *args, void (*fini)(void *)) {
    if (cm_ntasks >= CM_MAX_TASKS) cm_die("too many outstanding spawns");
    cm_tasks[cm_ntasks].tid = tid;
    cm_tasks[cm_ntasks].args = args;
    cm_tasks[cm_ntasks].fini = fini;
    cm_ntasks++;
}
static void cm_sync_from(int mark) {
    while (cm_ntasks > mark) {
        cm_ntasks--;
        cm_task *t = &cm_tasks[cm_ntasks];
        pthread_join(t->tid, 0);
        if (t->fini) t->fini(t->args);
        free(t->args);
    }
}
`

// containsCilk reports whether a statement tree uses spawn or sync.
func containsCilk(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.SpawnStmt, *ast.SyncStmt:
		return true
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			if containsCilk(st) {
				return true
			}
		}
	case *ast.IfStmt:
		return containsCilk(s.Then) || containsCilk(s.Else)
	case *ast.WhileStmt:
		return containsCilk(s.Body)
	case *ast.ForStmt:
		return containsCilk(s.Init) || containsCilk(s.Post) || containsCilk(s.Body)
	}
	return false
}

// emitSpawn lifts one spawn site.
func (f *fnEmitter) emitSpawn(s *ast.SpawnStmt) error {
	call, ok := s.Call.(*ast.CallExpr)
	if !ok {
		return fmt.Errorf("cgen: spawn requires a function call")
	}
	sig, ok := f.g.info.Funcs[call.Fun]
	if !ok {
		return fmt.Errorf("cgen: spawn of unknown function %q", call.Fun)
	}
	ret := sig.Type.Ret
	var tgtTy *types.Type
	if s.Target != "" {
		if t, ok := f.vars[s.Target]; ok {
			tgtTy = t
		} else if t, ok := f.g.info.GlobalTypes[s.Target]; ok {
			tgtTy = t
		} else {
			return fmt.Errorf("cgen: spawn target %q not found", s.Target)
		}
		if tgtTy.Kind == types.Tuple || tgtTy.Kind == types.RcPtr {
			return fmt.Errorf("cgen: spawn targets of type %s are not supported by the C back end", tgtTy)
		}
	}

	f.g.liftN++
	id := f.g.liftN
	var lf strings.Builder
	fmt.Fprintf(&lf, "/* spawn site %d: %s */\n", id, call.Fun)
	fmt.Fprintf(&lf, "typedef struct {\n")
	for i, pt := range sig.Type.Params {
		fmt.Fprintf(&lf, "    %s_a%d;\n", padType(f.g.cType(pt)), i)
	}
	if tgtTy != nil {
		fmt.Fprintf(&lf, "    %s_res;\n", padType(f.g.cType(tgtTy)))
		fmt.Fprintf(&lf, "    %s*_dst;\n", padType(f.g.cType(tgtTy)))
	}
	fmt.Fprintf(&lf, "} _spargs%d;\n", id)

	fmt.Fprintf(&lf, "static void *_spwrap%d(void *_p) {\n", id)
	fmt.Fprintf(&lf, "    _spargs%d *_a = (_spargs%d *)_p;\n", id, id)
	var argv []string
	for i := range sig.Type.Params {
		argv = append(argv, fmt.Sprintf("_a->_a%d", i))
	}
	callText := fmt.Sprintf("%s(%s)", cname(call.Fun), strings.Join(argv, ", "))
	if tgtTy != nil {
		callText = fmt.Sprintf("_a->_res = %s", promoteScalar(callText, ret, tgtTy))
	} else if ret.IsMatrix() {
		// discard an owned result
		callText = fmt.Sprintf("cm_decref(%s)", callText)
	}
	fmt.Fprintf(&lf, "    %s;\n", callText)
	fmt.Fprintf(&lf, "    return 0;\n}\n")

	fmt.Fprintf(&lf, "static void _spfini%d(void *_p) {\n", id)
	fmt.Fprintf(&lf, "    _spargs%d *_a = (_spargs%d *)_p;\n", id, id)
	for i, pt := range sig.Type.Params {
		if pt.IsMatrix() {
			fmt.Fprintf(&lf, "    cm_decref(_a->_a%d); /* argument reference taken at spawn */\n", i)
		}
	}
	if tgtTy != nil {
		if tgtTy.IsMatrix() {
			fmt.Fprintf(&lf, "    cm_decref(*_a->_dst);\n")
			fmt.Fprintf(&lf, "    *_a->_dst = _a->_res; /* ownership transferred from the callee */\n")
		} else {
			fmt.Fprintf(&lf, "    *_a->_dst = _a->_res;\n")
		}
	}
	fmt.Fprintf(&lf, "}\n\n")
	f.g.lifted.WriteString(lf.String())

	// Call site: evaluate arguments now (Cilk semantics), take matrix
	// references for the thread's lifetime, create the thread, push
	// the task.
	args := f.g.fresh("sa")
	f.b.line("_spargs%d *%s = (_spargs%d *)malloc(sizeof(_spargs%d));", id, args, id, id)
	for i, a := range call.Args {
		v, err := f.expr(a)
		if err != nil {
			return err
		}
		f.b.line("%s->_a%d = %s;", args, i, promoteScalar(v, f.g.info.TypeOf(a), sig.Type.Params[i]))
		if sig.Type.Params[i].IsMatrix() {
			f.b.line("cm_incref(%s->_a%d);", args, i)
		}
	}
	if tgtTy != nil {
		f.b.line("%s->_dst = &%s;", args, cname(s.Target))
	}
	tid := f.g.fresh("tid")
	f.b.line("pthread_t %s;", tid)
	f.b.line("pthread_create(&%s, 0, _spwrap%d, %s);", tid, id, args)
	f.b.line("cm_spawn_push(%s, %s, _spfini%d);", tid, args, id)
	f.releaseTemps()
	return nil
}
