// Package cgen translates type-checked extended-CMINUS programs to
// plain parallel C — the other half of the paper's translator. The
// output is a self-contained C99 translation unit: the reference-
// counted matrix runtime and fork-join pthread pool (runtime_c.go),
// the user's functions with matrix operations either lowered to
// explicit loop nests (with-loops, §III-A.4) or compiled to runtime
// calls with reference-count insertion (§III-B), and a main wrapper
// that takes the thread count as a command line argument (§III-C).
//
// The high-level optimizations of §III-A.4 (genarray/assignment fusion
// and slice elimination in folds) and the user-directed transformations
// of §V (split, vectorize, parallelize, reorder, tile, unroll) are
// applied during with-loop lowering; see withloop.go and vector.go.
package cgen

import (
	"fmt"

	"strings"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// ParMode selects how parallel constructs are emitted.
type ParMode string

// Parallelization modes.
const (
	ParNone    ParMode = "none"    // sequential C (the Fig 3 presentation)
	ParPthread ParMode = "pthread" // fork-join pool dispatch (§III-C)
	ParOMP     ParMode = "omp"     // OpenMP pragmas (Fig 11)
)

// Options configures code generation.
type Options struct {
	Par ParMode
	// Optimize enables the §III-A.4 high-level optimizations:
	// slice elimination (direct strided loads instead of bounds-checked
	// accessor calls) and genarray/assignment fusion (moving the
	// result instead of copying it). Off is the ablation baseline.
	Optimize bool
}

// DefaultOptions is what cmd/cmc uses.
func DefaultOptions() Options { return Options{Par: ParPthread, Optimize: true} }

// Generate translates a checked program to C source.
func Generate(prog *ast.Program, info *sem.Info, opts Options) (string, error) {
	g := &generator{info: info, opts: opts, tupleTypes: map[string]string{}}
	return g.run(prog)
}

type generator struct {
	info *sem.Info
	opts Options

	tupleTypes map[string]string // signature -> struct name
	tupleDefs  strings.Builder
	protos     strings.Builder
	lifted     strings.Builder // lifted with-loop worker functions
	funcs      strings.Builder

	tmpN        int
	liftN       int
	usesVectors bool
	usesCilk    bool
}

func (g *generator) fresh(prefix string) string {
	g.tmpN++
	return fmt.Sprintf("_%s%d", prefix, g.tmpN)
}

// cname sanitizes a user identifier for C.
func cname(name string) string { return "u_" + name }

// cType maps a semantic type to its C representation.
func (g *generator) cType(t *types.Type) string {
	switch t.Kind {
	case types.Int:
		return "long"
	case types.Float:
		return "float"
	case types.Bool:
		return "int"
	case types.Void:
		return "void"
	case types.Matrix, types.AnyMatrix:
		return "cm_mat *"
	case types.Tuple:
		return g.tupleType(t) + " "
	case types.RcPtr:
		return "cm_cell *"
	}
	return "/*?*/ long"
}

// tupleType interns a struct definition for a tuple type.
func (g *generator) tupleType(t *types.Type) string {
	sig := t.String()
	if name, ok := g.tupleTypes[sig]; ok {
		return name
	}
	name := fmt.Sprintf("cm_tup%d", len(g.tupleTypes))
	g.tupleTypes[sig] = name
	fmt.Fprintf(&g.tupleDefs, "typedef struct { ")
	for i, e := range t.Elems {
		fmt.Fprintf(&g.tupleDefs, "%s _%d; ", strings.TrimRight(g.cType(e), " "), i)
	}
	fmt.Fprintf(&g.tupleDefs, "} %s; /* %s */\n", name, sig)
	return name
}

func elemEnum(t *types.Type) string {
	switch t.Elem.Kind {
	case types.Float:
		return "CM_FLOAT"
	case types.Int:
		return "CM_INT"
	default:
		return "CM_BOOL"
	}
}

func (g *generator) run(prog *ast.Program) (string, error) {
	// Globals first (C file scope), then functions.
	var globals strings.Builder
	for _, d := range prog.Decls {
		if gv, ok := d.(*ast.GlobalVarDecl); ok {
			ty := types.MustFrom(gv.Type)
			fmt.Fprintf(&globals, "static %s%s;\n", padType(g.cType(ty)), cname(gv.Name))
		}
	}
	// Prototypes so call order does not matter.
	for _, d := range prog.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		sig := g.info.Funcs[fn.Name]
		fmt.Fprintf(&g.protos, "static %s%s(%s);\n",
			padType(g.cType(sig.Type.Ret)), cname(fn.Name), g.paramList(fn, sig))
	}
	// Function bodies.
	for _, d := range prog.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if err := g.emitFunc(fn); err != nil {
			return "", err
		}
	}
	// Global initializers + main wrapper.
	var init strings.Builder
	fmt.Fprintf(&init, "int main(int argc, char **argv) {\n")
	fmt.Fprintf(&init, "    int threads = 1;\n")
	fmt.Fprintf(&init, "    for (int a = 1; a < argc; a++)\n")
	fmt.Fprintf(&init, "        if (argv[a] && argv[a][0] == '-' && argv[a][1] == 't' && a + 1 < argc)\n")
	fmt.Fprintf(&init, "            threads = atoi(argv[a + 1]);\n")
	if g.opts.Par == ParPthread {
		fmt.Fprintf(&init, "    if (threads > 1) cm_pool_init(threads); /* spawn-once fork-join pool (§III-C) */\n")
	}
	ge := g.newFnEmitter(nil)
	ge.b.indent = 1
	for _, d := range prog.Decls {
		gv, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		ty := types.MustFrom(gv.Type)
		ge.vars[gv.Name] = ty
		if gv.Init == nil {
			continue
		}
		val, err := ge.expr(gv.Init)
		if err != nil {
			return "", err
		}
		ge.assignVar(cname(gv.Name), ty, val, g.info.TypeOf(gv.Init))
		ge.releaseTemps()
	}
	init.WriteString(ge.b.String())
	fmt.Fprintf(&init, "    long code = %s();\n", cname("main"))
	if g.opts.Par == ParPthread {
		fmt.Fprintf(&init, "    cm_pool_shutdown();\n")
	}
	fmt.Fprintf(&init, "    return (int)code;\n}\n")

	var out strings.Builder
	out.WriteString("/* Generated by cmc, the extensible CMINUS translator. */\n")
	if g.opts.Par == ParOMP || g.usesVectors {
		out.WriteString("#include <xmmintrin.h>\n")
	}
	out.WriteString(cRuntime)
	out.WriteString(cRuntimeExtras)
	if g.usesCilk {
		out.WriteString(cilkRuntime)
	}
	out.WriteString("\n/* ---- tuple types ---- */\n")
	out.WriteString(g.tupleDefs.String())
	out.WriteString("\n/* ---- globals ---- */\n")
	out.WriteString(globals.String())
	out.WriteString("\n/* ---- prototypes ---- */\n")
	out.WriteString(g.protos.String())
	out.WriteString("\n/* ---- lifted parallel workers ---- */\n")
	out.WriteString(g.lifted.String())
	out.WriteString("\n/* ---- translated functions ---- */\n")
	out.WriteString(g.funcs.String())
	out.WriteString("\n")
	out.WriteString(init.String())
	return out.String(), nil
}

func padType(t string) string {
	if strings.HasSuffix(t, "*") || strings.HasSuffix(t, " ") {
		return t
	}
	return t + " "
}

func (g *generator) paramList(fn *ast.FuncDecl, sig *sem.FuncSig) string {
	if len(fn.Params) == 0 {
		return "void"
	}
	parts := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		parts[i] = padType(g.cType(sig.Type.Params[i])) + cname(p.Name)
	}
	return strings.Join(parts, ", ")
}

// indentWriter accumulates indented C lines.
type indentWriter struct {
	b      strings.Builder
	indent int
}

func (w *indentWriter) line(format string, args ...any) {
	w.b.WriteString(strings.Repeat("    ", w.indent))
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

func (w *indentWriter) raw(s string) {
	for _, l := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		w.b.WriteString(strings.Repeat("    ", w.indent))
		w.b.WriteString(l)
		w.b.WriteByte('\n')
	}
}

func (w *indentWriter) String() string { return w.b.String() }

// fnEmitter emits one function (or the global-init pseudo function).
type fnEmitter struct {
	g    *generator
	b    *indentWriter
	fn   *ast.FuncDecl
	vars map[string]*types.Type // user var name -> type
	// temps holds owned cm_mat temporaries to decref after the
	// current statement — the translator's §III-B RC insertion.
	temps       []string
	cellTemps   []string
	ownedTuples []scopedVar
	contLabels  []string
	cilk        bool // this function contains spawn/sync
	// scopes tracks matrix-holding locals for scope-exit release.
	scopes [][]scopedVar
	endCtx []string // C expressions for 'end' per index dimension
	wlN    int      // with-loops emitted, for per-nest hoisted names
}

type scopedVar struct {
	cname string
	ty    *types.Type
}

func (g *generator) newFnEmitter(fn *ast.FuncDecl) *fnEmitter {
	return &fnEmitter{g: g, b: &indentWriter{}, fn: fn, vars: map[string]*types.Type{}}
}

func (f *fnEmitter) temp(ctype, init string) string {
	name := f.g.fresh("t")
	f.b.line("%s%s = %s;", padType(ctype), name, init)
	if ctype == "cm_mat *" {
		f.temps = append(f.temps, name)
	}
	return name
}

// releaseTemps decrefs owned temporaries created by the current
// statement ("anytime a variable goes out of scope, or gets assigned a
// new piece of data, then we decrement its reference counter").
func (f *fnEmitter) releaseTemps() {
	for _, t := range f.temps {
		f.b.line("cm_decref(%s);", t)
	}
	f.temps = f.temps[:0]
	for _, t := range f.cellTemps {
		f.b.line("cm_cell_decref(%s);", t)
	}
	f.cellTemps = f.cellTemps[:0]
	for _, v := range f.ownedTuples {
		f.releaseVar(v)
	}
	f.ownedTuples = f.ownedTuples[:0]
}

func (f *fnEmitter) pushScope() { f.scopes = append(f.scopes, nil) }

func (f *fnEmitter) popScope(emitRelease bool) {
	top := f.scopes[len(f.scopes)-1]
	f.scopes = f.scopes[:len(f.scopes)-1]
	if emitRelease {
		for _, v := range top {
			f.releaseVar(v)
		}
	}
}

func (f *fnEmitter) releaseVar(v scopedVar) {
	switch v.ty.Kind {
	case types.Matrix, types.AnyMatrix:
		f.b.line("cm_decref(%s);", v.cname)
	case types.RcPtr:
		f.b.line("cm_cell_decref(%s);", v.cname)
	case types.Tuple:
		for i, e := range v.ty.Elems {
			f.releaseVar(scopedVar{fmt.Sprintf("%s._%d", v.cname, i), e})
		}
	}
}

// releaseAllScopes emits releases for every live scope (for returns).
func (f *fnEmitter) releaseAllScopes() {
	for k := len(f.scopes) - 1; k >= 0; k-- {
		for _, v := range f.scopes[k] {
			f.releaseVar(v)
		}
	}
}

func (f *fnEmitter) trackVar(cn string, ty *types.Type) {
	if len(f.scopes) == 0 {
		return // globals are released at process exit
	}
	switch ty.Kind {
	case types.Matrix, types.AnyMatrix, types.RcPtr, types.Tuple:
		f.scopes[len(f.scopes)-1] = append(f.scopes[len(f.scopes)-1], scopedVar{cn, ty})
	}
}

// retain emits an incref for a value of the given type.
func (f *fnEmitter) retain(cexpr string, ty *types.Type) {
	switch ty.Kind {
	case types.Matrix, types.AnyMatrix:
		f.b.line("cm_incref(%s);", cexpr)
	case types.RcPtr:
		f.b.line("cm_cell_incref(%s);", cexpr)
	case types.Tuple:
		for i, e := range ty.Elems {
			f.retain(fmt.Sprintf("%s._%d", cexpr, i), e)
		}
	}
}

// assignVar stores val into an existing variable with RC maintenance
// and int->float promotion.
func (f *fnEmitter) assignVar(cn string, varTy *types.Type, val string, valTy *types.Type) {
	val = promoteScalar(val, valTy, varTy)
	switch varTy.Kind {
	case types.Matrix, types.AnyMatrix:
		tmp := f.g.fresh("n")
		f.b.line("cm_mat *%s = %s;", tmp, val)
		f.b.line("cm_incref(%s);", tmp)
		f.b.line("cm_decref(%s);", cn)
		f.b.line("%s = %s;", cn, tmp)
	case types.RcPtr:
		tmp := f.g.fresh("n")
		f.b.line("cm_cell *%s = %s;", tmp, val)
		f.b.line("cm_cell_incref(%s);", tmp)
		f.b.line("cm_cell_decref(%s);", cn)
		f.b.line("%s = %s;", cn, tmp)
	case types.Tuple:
		tmp := f.g.fresh("n")
		f.b.line("%s %s = %s;", f.g.tupleType(varTy), tmp, val)
		f.retain(tmp, varTy)
		f.releaseVar(scopedVar{cn, varTy})
		f.b.line("%s = %s;", cn, tmp)
	default:
		f.b.line("%s = %s;", cn, val)
	}
}

// promoteScalar inserts a C cast for int->float assignment contexts.
func promoteScalar(val string, from, to *types.Type) string {
	if from != nil && to != nil && from.Kind == types.Int && to.Kind == types.Float {
		return "(float)(" + val + ")"
	}
	return val
}

func (g *generator) emitFunc(fn *ast.FuncDecl) error {
	sig := g.info.Funcs[fn.Name]
	f := g.newFnEmitter(fn)
	f.b.indent = 1
	f.cilk = containsCilk(fn.Body)
	if f.cilk {
		g.usesCilk = true
		f.b.line("int _cilk_mark = cm_ntasks; /* this function's spawn region */")
	}
	f.pushScope()
	for i, p := range fn.Params {
		f.vars[p.Name] = sig.Type.Params[i]
		// Parameters are borrowed references: retained on entry and
		// released on exit, so callees may reassign them freely.
		f.retain(cname(p.Name), sig.Type.Params[i])
		f.trackVar(cname(p.Name), sig.Type.Params[i])
	}
	for _, s := range fn.Body.Stmts {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	if f.cilk {
		f.b.line("cm_sync_from(_cilk_mark); /* implicit sync at function exit */")
	}
	f.popScope(true)
	if sig.Type.Ret.Kind == types.Int && fn.Name == "main" {
		f.b.line("return 0;")
	}
	fmt.Fprintf(&g.funcs, "static %s%s(%s) {\n%s}\n\n",
		padType(g.cType(sig.Type.Ret)), cname(fn.Name), g.paramList(fn, sig), f.b.String())
	return nil
}
