// Expression translation. Scalar expressions become C expressions;
// matrix-valued expressions become owned cm_mat* temporaries produced
// by runtime calls (released at end of statement), except with-loops
// and matrixMap, which lower to explicit loop nests in withloop.go.
package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/types"
)

var cOpEnum = map[ast.BinOp]string{
	ast.OpAdd: "CM_ADD", ast.OpSub: "CM_SUB", ast.OpMul: "CM_MUL",
	ast.OpElemMul: "CM_MUL", ast.OpDiv: "CM_DIV", ast.OpMod: "CM_MOD",
	ast.OpEq: "CM_EQ", ast.OpNe: "CM_NE", ast.OpLt: "CM_LT",
	ast.OpLe: "CM_LE", ast.OpGt: "CM_GT", ast.OpGe: "CM_GE",
	ast.OpAnd: "CM_AND", ast.OpOr: "CM_OR",
}

var cOpScalar = map[ast.BinOp]string{
	ast.OpAdd: "+", ast.OpSub: "-", ast.OpMul: "*", ast.OpElemMul: "*",
	ast.OpDiv: "/", ast.OpMod: "%", ast.OpEq: "==", ast.OpNe: "!=",
	ast.OpLt: "<", ast.OpLe: "<=", ast.OpGt: ">", ast.OpGe: ">=",
	ast.OpAnd: "&&", ast.OpOr: "||",
}

// cFloat renders a float literal with a trailing f suffix.
func cFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s + "f"
}

func (f *fnEmitter) expr(e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return fmt.Sprintf("%dL", e.Value), nil
	case *ast.FloatLit:
		return cFloat(e.Value), nil
	case *ast.BoolLit:
		if e.Value {
			return "1", nil
		}
		return "0", nil
	case *ast.StrLit:
		return fmt.Sprintf("%q", e.Value), nil
	case *ast.Ident:
		return cname(e.Name), nil

	case *ast.BinaryExpr:
		return f.binary(e)

	case *ast.UnaryExpr:
		x, err := f.expr(e.X)
		if err != nil {
			return "", err
		}
		if f.g.info.TypeOf(e.X).IsMatrix() {
			neg := "0"
			if e.Op == ast.OpNeg {
				neg = "1"
			}
			return f.temp("cm_mat *", fmt.Sprintf("cm_unary(%s, %s)", neg, x)), nil
		}
		if e.Op == ast.OpNeg {
			return "(-(" + x + "))", nil
		}
		return "(!(" + x + "))", nil

	case *ast.CastExpr:
		x, err := f.expr(e.X)
		if err != nil {
			return "", err
		}
		switch e.To {
		case ast.PrimInt:
			return "((long)(" + x + "))", nil
		case ast.PrimFloat:
			return "((float)(" + x + "))", nil
		default:
			return "((" + x + ") != 0)", nil
		}

	case *ast.CallExpr:
		return f.call(e)

	case *ast.IndexExpr:
		return f.indexLoad(e)

	case *ast.EndExpr:
		if len(f.endCtx) == 0 {
			return "", fmt.Errorf("cgen: 'end' outside index context")
		}
		return f.endCtx[len(f.endCtx)-1], nil

	case *ast.RangeExpr:
		lo, err := f.expr(e.Lo)
		if err != nil {
			return "", err
		}
		hi, err := f.expr(e.Hi)
		if err != nil {
			return "", err
		}
		return f.temp("cm_mat *", fmt.Sprintf("cm_rangevec(%s, %s)", lo, hi)), nil

	case *ast.TupleExpr:
		ty := f.g.info.TypeOf(e)
		parts := make([]string, len(e.Elems))
		for i, el := range e.Elems {
			v, err := f.expr(el)
			if err != nil {
				return "", err
			}
			parts[i] = promoteScalar(v, f.g.info.TypeOf(el), ty.Elems[i])
		}
		return fmt.Sprintf("(%s){%s}", f.g.tupleType(ty), strings.Join(parts, ", ")), nil

	case *ast.WithLoop:
		return f.emitWithLoop(e)

	case *ast.MatrixMap:
		return f.emitMatrixMap(e)

	case *ast.InitExpr:
		ty := f.g.info.TypeOf(e)
		dims := make([]string, len(e.Dims))
		for i, d := range e.Dims {
			v, err := f.expr(d)
			if err != nil {
				return "", err
			}
			dims[i] = v
		}
		return f.temp("cm_mat *", fmt.Sprintf("cm_alloc(%s, %d, (long[]){%s})",
			elemEnum(ty), ty.Rank, strings.Join(dims, ", "))), nil
	}
	return "", fmt.Errorf("cgen: unknown expression %T", e)
}

func (f *fnEmitter) binary(e *ast.BinaryExpr) (string, error) {
	lt := f.g.info.TypeOf(e.L)
	rt := f.g.info.TypeOf(e.R)
	l, err := f.expr(e.L)
	if err != nil {
		return "", err
	}
	r, err := f.expr(e.R)
	if err != nil {
		return "", err
	}
	switch {
	case lt.IsMatrix() && rt.IsMatrix():
		if e.Op == ast.OpMul {
			return f.temp("cm_mat *", fmt.Sprintf("cm_matmul(%s, %s)", l, r)), nil
		}
		return f.temp("cm_mat *", fmt.Sprintf("cm_ew(%s, %s, %s)", cOpEnum[e.Op], l, r)), nil
	case lt.IsMatrix():
		return f.temp("cm_mat *", fmt.Sprintf("cm_bc(%s, %s, (double)(%s), %s, 1)",
			cOpEnum[e.Op], l, r, scalarElemEnum(rt))), nil
	case rt.IsMatrix():
		return f.temp("cm_mat *", fmt.Sprintf("cm_bc(%s, %s, (double)(%s), %s, 0)",
			cOpEnum[e.Op], r, l, scalarElemEnum(lt))), nil
	default:
		return fmt.Sprintf("(%s %s %s)", l, cOpScalar[e.Op], r), nil
	}
}

func scalarElemEnum(t *types.Type) string {
	switch t.Kind {
	case types.Float:
		return "CM_FLOAT"
	case types.Bool:
		return "CM_BOOL"
	default:
		return "CM_INT"
	}
}

func (f *fnEmitter) call(e *ast.CallExpr) (string, error) {
	// Builtins first.
	switch e.Fun {
	case "dimSize":
		m, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		d, err := f.expr(e.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cm_dim(%s, %s)", m, d), nil
	case "readMatrix":
		name, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		return f.temp("cm_mat *", fmt.Sprintf("cm_read(%s)", name)), nil
	case "writeMatrix":
		name, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		m, err := f.expr(e.Args[1])
		if err != nil {
			return "", err
		}
		f.b.line("cm_write(%s, %s);", name, m)
		return "", nil
	case "print":
		v, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		switch f.g.info.TypeOf(e.Args[0]).Kind {
		case types.Float:
			f.b.line("printf(\"%%g\\n\", (double)(%s));", v)
		case types.Bool:
			f.b.line("printf(\"%%s\\n\", (%s) ? \"true\" : \"false\");", v)
		case types.Matrix, types.AnyMatrix:
			f.b.line("cm_printmat(%s);", v)
		default:
			f.b.line("printf(\"%%ld\\n\", (long)(%s));", v)
		}
		return "", nil
	case "rcnew":
		v, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		name := f.g.fresh("cell")
		f.b.line("cm_cell *%s = cm_cell_new((double)(%s));", name, v)
		f.cellTemps = append(f.cellTemps, name)
		return name, nil
	case "rcget":
		p, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		ty := f.g.info.TypeOf(e)
		return fmt.Sprintf("((%s)cm_cell_get(%s))", strings.TrimSpace(f.g.cType(ty)), p), nil
	case "rcset":
		p, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		v, err := f.expr(e.Args[1])
		if err != nil {
			return "", err
		}
		f.b.line("cm_cell_set(%s, (double)(%s));", p, v)
		return "", nil
	case "rcrelease":
		p, err := f.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		f.b.line("cm_cell_release(%s);", p)
		return "", nil
	}

	sig, ok := f.g.info.Funcs[e.Fun]
	if !ok {
		return "", fmt.Errorf("cgen: unknown function %q", e.Fun)
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		v, err := f.expr(a)
		if err != nil {
			return "", err
		}
		args[i] = promoteScalar(v, f.g.info.TypeOf(a), sig.Type.Params[i])
	}
	callExpr := fmt.Sprintf("%s(%s)", cname(e.Fun), strings.Join(args, ", "))
	ret := sig.Type.Ret
	switch ret.Kind {
	case types.Matrix, types.AnyMatrix:
		// Function results carry one owned reference (see stmt.go's
		// return protocol); register it as a statement temp.
		return f.temp("cm_mat *", callExpr), nil
	case types.Tuple:
		name := f.g.fresh("tt")
		f.b.line("%s %s = %s;", f.g.tupleType(ret), name, callExpr)
		f.ownedTuples = append(f.ownedTuples, scopedVar{name, ret})
		return name, nil
	case types.Void:
		f.b.line("%s;", callExpr)
		return "", nil
	default:
		return callExpr, nil
	}
}

// indexLoad compiles m[args...]: all-scalar selections load one
// element; others produce an owned sub-matrix.
func (f *fnEmitter) indexLoad(e *ast.IndexExpr) (string, error) {
	base, err := f.expr(e.X)
	if err != nil {
		return "", err
	}
	// 'end' needs a stable base to take cm_dim of.
	if !isSimpleCName(base) {
		b := f.g.fresh("b")
		f.b.line("cm_mat *%s = %s;", b, base)
		base = b
	}
	specs, err := f.indexSpecArray(e, base)
	if err != nil {
		return "", err
	}
	resTy := f.g.info.TypeOf(e)
	if resTy.IsMatrix() {
		return f.temp("cm_mat *", fmt.Sprintf("cm_index(%s, %d, %s)", base, len(e.Args), specs)), nil
	}
	load := fmt.Sprintf("cm_index_scalar(%s, %d, %s)", base, len(e.Args), specs)
	switch resTy.Kind {
	case types.Float:
		return "((float)" + load + ")", nil
	case types.Bool:
		return "(" + load + " != 0)", nil
	default:
		return "((long)" + load + ")", nil
	}
}

func isSimpleCName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return len(s) > 0
}

// indexSpecArray materializes a cm_spec array variable for e's index
// arguments, binding 'end' to the base's dimension sizes.
func (f *fnEmitter) indexSpecArray(e *ast.IndexExpr, base string) (string, error) {
	parts := make([]string, len(e.Args))
	for d, a := range e.Args {
		f.endCtx = append(f.endCtx, fmt.Sprintf("(cm_dim(%s, %d) - 1)", base, d))
		spec, err := f.oneSpec(a)
		f.endCtx = f.endCtx[:len(f.endCtx)-1]
		if err != nil {
			return "", err
		}
		parts[d] = spec
	}
	name := f.g.fresh("sp")
	f.b.line("cm_spec %s[] = {%s};", name, strings.Join(parts, ", "))
	return name, nil
}

func (f *fnEmitter) oneSpec(a ast.IndexArg) (string, error) {
	switch a := a.(type) {
	case *ast.IdxScalar:
		v, err := f.expr(a.X)
		if err != nil {
			return "", err
		}
		if f.g.info.TypeOf(a.X).IsMatrix() {
			return fmt.Sprintf("cm_maskspec(%s)", v), nil
		}
		return fmt.Sprintf("cm_scalar(%s)", v), nil
	case *ast.IdxRange:
		lo, err := f.expr(a.Lo)
		if err != nil {
			return "", err
		}
		hi, err := f.expr(a.Hi)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cm_span(%s, %s)", lo, hi), nil
	case *ast.IdxAll:
		return "cm_allspec()", nil
	}
	return "", fmt.Errorf("cgen: unknown index arg %T", a)
}
