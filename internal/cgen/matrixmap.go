// matrixMap translation (§III-A.5): the mapped function is passed by
// pointer to the runtime's cm_matrixmap, which iterates the unmapped
// dimensions on the fork-join pool.
package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

func (f *fnEmitter) emitMatrixMap(e *ast.MatrixMap) (string, error) {
	arg, err := f.expr(e.Arg)
	if err != nil {
		return "", err
	}
	dims := make([]string, len(e.Dims))
	for i, d := range e.Dims {
		lit, ok := d.(*ast.IntLit)
		if !ok {
			return "", fmt.Errorf("cgen: matrixMap dimensions must be integer literals")
		}
		dims[i] = fmt.Sprintf("%d", lit.Value)
	}
	resTy := f.g.info.TypeOf(e)
	fn := "cm_matrixmap"
	if e.General {
		fn = "cm_matrixmapg"
	}
	return f.temp("cm_mat *", fmt.Sprintf("%s(%s, %d, (int[]){%s}, %s, %s)",
		fn, arg, len(e.Dims), strings.Join(dims, ", "), elemEnum(resTy), cname(e.Fun))), nil
}

// cRuntimeExtras holds the runtime pieces beyond the core prelude:
// bounds-checked element accessors (the no-slice-elimination ablation
// path), matrix copy (the no-fusion ablation path), matrix printing,
// and the reference-counting extension's cells.
const cRuntimeExtras = `
/* ---- runtime extras ---- */
static double cm_at1(cm_mat *m, long i) {
    cm_spec s[1] = {cm_scalar(i)};
    return cm_index_scalar(m, 1, s);
}
static double cm_at2(cm_mat *m, long i, long j) {
    cm_spec s[2] = {cm_scalar(i), cm_scalar(j)};
    return cm_index_scalar(m, 2, s);
}
static double cm_at3(cm_mat *m, long i, long j, long k) {
    cm_spec s[3] = {cm_scalar(i), cm_scalar(j), cm_scalar(k)};
    return cm_index_scalar(m, 3, s);
}
static cm_mat *cm_copy(cm_mat *m) {
    cm_mat *out = cm_alloc(m->elem, m->rank, m->shape);
    if (m->f) memcpy(out->f, m->f, m->size * sizeof(float));
    if (m->i) memcpy(out->i, m->i, m->size * sizeof(long));
    if (m->b) memcpy(out->b, m->b, m->size);
    return out;
}
static void cm_printmat(cm_mat *m) {
    printf("Matrix %s [", m->elem == CM_FLOAT ? "float" : (m->elem == CM_INT ? "int" : "bool"));
    for (int d = 0; d < m->rank; d++) printf(d ? " %ld" : "%ld", m->shape[d]);
    printf("]");
    if (m->size <= 64) {
        printf(" {");
        for (long k = 0; k < m->size; k++) printf(k ? " %g" : "%g", cm_get(m, k));
        printf("}");
    }
    printf("\n");
}
/* generalized matrixMap (§III-A.5's "being developed" form): the
 * mapped function may change the mapped dimensions' sizes; the output
 * shape is discovered from the first application and all applications
 * must agree. */
typedef struct {
    cm_mat *in, *out;
    int ndims; const int *dims;
    cm_map_fn fn;
    long itersize;
    long start;
} cm_mmg_args;

static void cm_mmg_specs(cm_mat *in, int ndims, const int *dims, long it, cm_spec *specs) {
    int mapped[CM_MAX_RANK] = {0};
    for (int k = 0; k < ndims; k++) mapped[dims[k]] = 1;
    long rem = it;
    for (int d = in->rank - 1; d >= 0; d--) {
        if (mapped[d]) { specs[d] = cm_allspec(); continue; }
        specs[d] = cm_scalar(rem % in->shape[d]);
        rem /= in->shape[d];
    }
}

static void cm_mmg_one(cm_mmg_args *a, long it) {
    cm_spec specs[CM_MAX_RANK];
    cm_mmg_specs(a->in, a->ndims, a->dims, it, specs);
    cm_mat *sub = cm_index(a->in, a->in->rank, specs);
    cm_mat *res = a->fn(sub);
    for (int k = 0; k < a->ndims; k++)
        if (res->shape[k] != a->out->shape[a->dims[k]])
            cm_die("matrixMapG applications disagree on result size");
    cm_store(a->out, a->in->rank, specs, res);
    cm_decref(sub); cm_decref(res);
}

static void cm_mmg_work(void *p, int worker, int nworkers) {
    cm_mmg_args *a = (cm_mmg_args *)p;
    long span = a->itersize - a->start;
    long chunk = (span + nworkers - 1) / nworkers;
    long lo = a->start + (long)worker * chunk, hi = lo + chunk;
    if (hi > a->itersize) hi = a->itersize;
    for (long it = lo; it < hi; it++) cm_mmg_one(a, it);
}

static cm_mat *cm_matrixmapg(cm_mat *in, int ndims, const int *dims, int outElem, cm_map_fn fn) {
    if (!in) cm_die("matrixMapG of unassigned matrix");
    int mapped[CM_MAX_RANK] = {0};
    for (int k = 0; k < ndims; k++) mapped[dims[k]] = 1;
    long itersize = 1;
    for (int d = 0; d < in->rank; d++) if (!mapped[d]) itersize *= in->shape[d];
    if (itersize == 0) return cm_alloc(outElem, in->rank, in->shape);
    /* discover the output shape from application 0 */
    cm_spec specs[CM_MAX_RANK];
    cm_mmg_specs(in, ndims, dims, 0, specs);
    cm_mat *sub0 = cm_index(in, in->rank, specs);
    cm_mat *res0 = fn(sub0);
    if (res0->rank != ndims) cm_die("matrixMapG function returned wrong rank");
    long outshape[CM_MAX_RANK];
    for (int d = 0; d < in->rank; d++) outshape[d] = in->shape[d];
    for (int k = 0; k < ndims; k++) outshape[dims[k]] = res0->shape[k];
    cm_mat *out = cm_alloc(outElem, in->rank, outshape);
    cm_store(out, in->rank, specs, res0);
    cm_decref(sub0); cm_decref(res0);
    cm_mmg_args args = {in, out, ndims, dims, fn, itersize, 1};
    cm_pool_run(cm_mmg_work, &args);
    return out;
}

/* reference-counting extension cells (§III-B surface syntax) */
typedef struct { int rc; int released; double v; } cm_cell;
static cm_cell *cm_cell_new(double v) {
    cm_cell *c = (cm_cell *)malloc(sizeof(cm_cell));
    c->rc = 1; c->released = 0; c->v = v;
    return c;
}
static void cm_cell_incref(cm_cell *c) {
    if (c) __atomic_add_fetch(&c->rc, 1, __ATOMIC_SEQ_CST);
}
static void cm_cell_decref(cm_cell *c) {
    /* cells survive an explicit rcrelease until the last automatic
       reference drops, so stale aliases fail loudly instead of
       reading freed memory */
    if (c && __atomic_sub_fetch(&c->rc, 1, __ATOMIC_SEQ_CST) == 0) free(c);
}
static double cm_cell_get(cm_cell *c) {
    if (!c) cm_die("rcget of null refcounted pointer");
    if (c->released) cm_die("rc: rcget of a released refcounted pointer");
    return c->v;
}
static void cm_cell_set(cm_cell *c, double v) {
    if (!c) cm_die("rcset of null refcounted pointer");
    if (c->released) cm_die("rc: rcset of a released refcounted pointer");
    c->v = v;
}
static void cm_cell_release(cm_cell *c) {
    if (!c) cm_die("rcrelease of null refcounted pointer");
    if (c->released) cm_die("rc: double release of a refcounted pointer");
    c->released = 1;
}
`
