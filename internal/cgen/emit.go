// Nest emission: renders transformed loop IR as C, hoists the
// with-loop's prelude declarations above the nest (Fig 11's "floated
// above the outermost for loop"), lifts parallel outer loops into
// worker functions dispatched on the fork-join pool in pthread mode
// (§III-C), emits OpenMP pragmas in omp mode, and expands vectorized
// loops into SSE intrinsics (Fig 11) via vector.go.
package cgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loopir"
)

// emitNest writes the hoisted prelude and the (possibly lifted) nest
// into the function body.
func (f *fnEmitter) emitNest(w *wlState, nest []loopir.Stmt) error {
	f.b.raw(w.hoisted.String())
	// pthread lifting of a parallel outermost loop.
	if f.g.opts.Par == ParPthread {
		if outer, ok := nest[0].(*loopir.Loop); ok && outer.Parallel && len(nest) == 1 {
			if err := f.liftParallel(w, outer); err == nil {
				return nil
			}
			// Lifting can fail for un-analyzable (raw) bodies; fall
			// through to sequential emission of the same nest.
		}
	}
	body := &indentWriter{indent: f.b.indent}
	if err := emitC(f.g, body, nest); err != nil {
		return err
	}
	f.b.b.WriteString(body.String())
	return nil
}

// liftParallel emits the nest's outer loop as a pool worker function:
// captured free variables travel in an args struct, each worker runs a
// block-distributed chunk of the outer iteration space, and the call
// site releases the workers and waits in the stop barrier.
func (f *fnEmitter) liftParallel(w *wlState, outer *loopir.Loop) error {
	free, err := freeVars([]loopir.Stmt{outer})
	if err != nil {
		return err
	}
	// Resolve capture types; globals are file-scope and need no capture.
	type capture struct{ name, ctype string }
	var caps []capture
	for _, name := range free {
		if ct, ok := w.varTypes[name]; ok {
			caps = append(caps, capture{name, ct})
			continue
		}
		if strings.HasPrefix(name, "u_") {
			user := strings.TrimPrefix(name, "u_")
			if _, isGlobal := f.g.info.GlobalTypes[user]; isGlobal {
				continue
			}
			if ty, ok := f.vars[user]; ok {
				caps = append(caps, capture{name, strings.TrimRight(f.g.cType(ty), " ") + " "})
				continue
			}
		}
		return fmt.Errorf("cgen: cannot determine capture type of %q", name)
	}

	f.g.liftN++
	id := f.g.liftN
	var lf strings.Builder
	fmt.Fprintf(&lf, "/* with-loop %d lifted for the fork-join pool (§III-C) */\n", id)
	fmt.Fprintf(&lf, "typedef struct {\n")
	for _, c := range caps {
		fmt.Fprintf(&lf, "    %s%s;\n", padType(strings.TrimSpace(c.ctype)), c.name)
	}
	fmt.Fprintf(&lf, "    long _plo, _phi;\n")
	fmt.Fprintf(&lf, "} _wlargs%d;\n", id)
	fmt.Fprintf(&lf, "static void _wlwork%d(void *_p, int _w, int _nw) {\n", id)
	fmt.Fprintf(&lf, "    _wlargs%d *_a = (_wlargs%d *)_p;\n", id, id)
	for _, c := range caps {
		fmt.Fprintf(&lf, "    %s%s = _a->%s;\n", padType(strings.TrimSpace(c.ctype)), c.name, c.name)
	}
	fmt.Fprintf(&lf, "    long _chunk = ((_a->_phi - _a->_plo) + _nw - 1) / _nw;\n")
	fmt.Fprintf(&lf, "    long _lo = _a->_plo + (long)_w * _chunk;\n")
	fmt.Fprintf(&lf, "    long _hi = _lo + _chunk;\n")
	fmt.Fprintf(&lf, "    if (_hi > _a->_phi) _hi = _a->_phi;\n")
	// Worker's own copy of the outer loop over its chunk.
	workerLoop := &loopir.Loop{Index: outer.Index, Lo: loopir.V("_lo"), Hi: loopir.V("_hi"),
		Body: outer.Body, VectorLanes: outer.VectorLanes}
	body := &indentWriter{indent: 1}
	if err := emitC(f.g, body, []loopir.Stmt{workerLoop}); err != nil {
		return err
	}
	lf.WriteString(body.String())
	fmt.Fprintf(&lf, "}\n\n")
	f.g.lifted.WriteString(lf.String())

	args := f.g.fresh("args")
	var inits []string
	for _, c := range caps {
		inits = append(inits, fmt.Sprintf(".%s = %s", c.name, c.name))
	}
	inits = append(inits,
		fmt.Sprintf("._plo = %s", exprC(outer.Lo)),
		fmt.Sprintf("._phi = %s", exprC(outer.Hi)))
	f.b.line("_wlargs%d %s = {%s};", id, args, strings.Join(inits, ", "))
	f.b.line("cm_pool_run(_wlwork%d, &%s); /* release workers; wait in the stop barrier */", id, args)
	return nil
}

func exprC(e loopir.Expr) string { return e.String() }

// freeVars collects variable and array names referenced but not bound
// inside the statement list. Raw statements defeat the analysis.
func freeVars(body []loopir.Stmt) ([]string, error) {
	used := map[string]bool{}
	bound := map[string]bool{}
	var walkExpr func(e loopir.Expr)
	walkExpr = func(e loopir.Expr) {
		switch e := e.(type) {
		case *loopir.VarRef:
			if !bound[e.Name] {
				used[e.Name] = true
			}
		case *loopir.Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *loopir.Un:
			walkExpr(e.X)
		case *loopir.Load:
			if !bound[e.Array] {
				used[e.Array] = true
			}
			walkExpr(e.Idx)
		case *loopir.CallE:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *loopir.Cond:
			walkExpr(e.C)
			walkExpr(e.T)
			walkExpr(e.F)
		}
	}
	var walk func(ss []loopir.Stmt) error
	walk = func(ss []loopir.Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				walkExpr(s.Lo)
				walkExpr(s.Hi)
				was := bound[s.Index]
				bound[s.Index] = true
				if err := walk(s.Body); err != nil {
					return err
				}
				bound[s.Index] = was
			case *loopir.DeclStmt:
				if s.Init != nil {
					walkExpr(s.Init)
				}
				bound[s.Name] = true
			case *loopir.AssignStmt:
				walkExpr(s.LHS)
				walkExpr(s.RHS)
			case *loopir.Raw:
				return fmt.Errorf("cgen: raw body defeats free-variable analysis")
			}
		}
		return nil
	}
	if err := walk(body); err != nil {
		return nil, err
	}
	var out []string
	for n := range used {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// emitC renders loop IR as C. Vectorized loops expand to SSE
// intrinsics; parallel loops get an OpenMP pragma in omp mode (in
// pthread mode the outermost parallel loop was lifted before reaching
// here, so a stray Parallel flag emits a comment only).
func emitC(g *generator, b *indentWriter, body []loopir.Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *loopir.Loop:
			if s.VectorLanes > 0 {
				if err := emitVectorLoop(g, b, s); err != nil {
					return err
				}
				continue
			}
			if s.Parallel {
				if g.opts.Par == ParOMP {
					b.line("#pragma omp parallel for")
				} else if g.opts.Par == ParPthread {
					b.line("/* parallel loop (executed by the enclosing pool worker) */")
				}
			}
			b.line("for (long %s = %s; %s < %s; %s++) {", s.Index, s.Lo, s.Index, s.Hi, s.Index)
			b.indent++
			if err := emitC(g, b, s.Body); err != nil {
				return err
			}
			b.indent--
			b.line("}")
		case *loopir.DeclStmt:
			if s.Init != nil {
				b.line("%s%s = %s;", padType(s.CType), s.Name, s.Init)
			} else {
				b.line("%s%s;", padType(s.CType), s.Name)
			}
		case *loopir.AssignStmt:
			b.line("%s = %s;", s.LHS, s.RHS)
		case *loopir.Comment:
			b.line("/* %s */", s.Text)
		case *loopir.Raw:
			b.raw(s.Code)
		}
	}
	return nil
}
