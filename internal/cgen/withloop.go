// With-loop and matrixMap lowering (§III-A.4/5, §V, §III-C).
//
// A with-loop expands to an explicit loop nest (Fig 1 → Fig 3). When
// the body is scalar-lowerable the nest reads matrix data through
// hoisted data/stride pointers — the slice-elimination optimization of
// §III-A.4 ("there was no need to iterate over a copied slice of
// mat"); with -O off, element access goes through bounds-checked
// runtime accessors instead (the ablation baseline). Nested scalar
// folds lower into accumulator loops inside the nest, which is exactly
// the Fig 3 shape. Bodies that cannot be scalar-lowered fall back to
// general translated C inside the nest.
//
// User transform clauses (§V) apply loopir rewrites; the outermost
// loop is auto-parallelized per §III-C — lifted into a worker function
// dispatched on the fork-join pool in pthread mode ("we actually lift
// this out into a new function so that the spawned threads can get
// direct access to it"), or annotated with an OpenMP pragma in omp
// mode (Fig 11).
package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/loopir"
	"repro/internal/types"
)

// wlState is per-with-loop lowering state.
type wlState struct {
	f *fnEmitter
	// hoisted declarations emitted before the nest ("floated above
	// the outermost for loop", Fig 11).
	hoisted *indentWriter
	// types of hoisted / captured C variables, for pthread lifting.
	varTypes map[string]string
	// matrices whose data/stride pointers are already hoisted.
	direct map[string]bool
	ids    map[string]bool // loop indices in scope
	endStk []func() loopir.Expr
	seq    int
	// uid distinguishes this nest's hoisted pointer names: two
	// with-loops in one function may read the same matrix (which can
	// be rebound between them), so each nest re-reads data/stride/dim
	// pointers under its own names.
	uid int
}

func (f *fnEmitter) newWL() *wlState {
	f.wlN++
	return &wlState{f: f, hoisted: &indentWriter{}, uid: f.wlN,
		varTypes: map[string]string{}, direct: map[string]bool{}, ids: map[string]bool{}}
}

func (w *wlState) hoist(ctype, name, init string) string {
	w.hoisted.line("%s%s = %s;", padType(ctype), name, init)
	w.varTypes[name] = ctype
	return name
}

// emitWithLoop compiles one with-loop expression, returning the C
// expression holding its value.
func (f *fnEmitter) emitWithLoop(wl *ast.WithLoop) (string, error) {
	w := f.newWL()
	rank := len(wl.Ids)
	los := make([]loopir.Expr, rank)
	his := make([]loopir.Expr, rank)
	for d := 0; d < rank; d++ {
		var err error
		los[d], err = w.boundExpr(wl.Lower[d])
		if err != nil {
			return "", err
		}
		his[d], err = w.boundExpr(wl.Upper[d])
		if err != nil {
			return "", err
		}
		w.ids[wl.Ids[d]] = true
	}

	switch op := wl.Op.(type) {
	case *ast.GenArrayOp:
		return f.emitGenArray(w, wl, op, los, his)
	case *ast.FoldOp:
		return f.emitFold(w, wl, op, los, his)
	}
	return "", fmt.Errorf("cgen: unknown with-loop op %T", wl.Op)
}

func cElemType(t *types.Type) string {
	switch t.Elem.Kind {
	case types.Float:
		return "float"
	case types.Int:
		return "long"
	default:
		return "unsigned char"
	}
}

func dataField(t *types.Type) string {
	switch t.Elem.Kind {
	case types.Float:
		return "f"
	case types.Int:
		return "i"
	default:
		return "b"
	}
}

func (f *fnEmitter) emitGenArray(w *wlState, wl *ast.WithLoop, op *ast.GenArrayOp,
	los, his []loopir.Expr) (string, error) {
	resTy := f.g.info.TypeOf(wl)
	rank := len(wl.Ids)
	shs := make([]loopir.Expr, rank)
	shStrs := make([]string, rank)
	for d, se := range op.Shape {
		sh, err := w.boundExpr(se)
		if err != nil {
			return "", err
		}
		shs[d] = sh
		shStrs[d] = sh.String()
	}
	out := f.g.fresh("wl")
	w.hoisted.line("cm_mat *%s = cm_alloc(%s, %d, (long[]){%s});",
		out, elemEnum(resTy), rank, strings.Join(shStrs, ", "))
	w.varTypes[out] = "cm_mat *"
	// "the shape in the operation must be a superset of the indexes in
	// the generator, which is something that can be checked at runtime"
	var checks []string
	for d := 0; d < rank; d++ {
		checks = append(checks, fmt.Sprintf("%s < 0 || %s > %s", los[d], his[d], shs[d]))
	}
	w.hoisted.line("if (%s) cm_die(\"genarray shape is not a superset of the generator\");",
		strings.Join(checks, " || "))

	// Transpose fast path: a body that is exactly src[j, i] over the
	// full output shape skips the strided nest (whose inner stride is
	// the source row length) for the cache-blocked runtime kernel.
	if src, ok := w.transposeSource(wl, op, resTy); ok {
		if err := f.emitNest(w, []loopir.Stmt{
			&loopir.Raw{Code: fmt.Sprintf("cm_transpose(%s, %s);", out, cname(src))}}); err != nil {
			return "", err
		}
		f.temps = append(f.temps, out)
		return out, nil
	}
	outD := w.hoist(cElemType(resTy)+" *", out+"_d", out+"->"+dataField(resTy))

	// Linear output offset ((i*sh1 + j)*sh2 + k)...
	var linear loopir.Expr = loopir.V(cname(wl.Ids[0]))
	for d := 1; d < rank; d++ {
		linear = loopir.B("+", loopir.B("*", linear, shs[d]), loopir.V(cname(wl.Ids[d])))
	}

	var inner []loopir.Stmt
	pre, val, ok := w.lowerBody(op.Body)
	if ok {
		inner = append(pre, &loopir.AssignStmt{LHS: loopir.Ld(outD, linear), RHS: val})
	} else {
		raw, cval, err := f.generalBody(op.Body)
		if err != nil {
			return "", err
		}
		raw += fmt.Sprintf("cm_put(%s, %s, (double)(%s));\n", out, linear, cval)
		inner = []loopir.Stmt{&loopir.Raw{Code: strings.TrimRight(raw, "\n")}}
	}
	nest := buildNest(wl.Ids, los, his, inner)
	nest, err := f.applyTransforms(nest, wl.Transforms)
	if err != nil {
		return "", err
	}
	f.autoParallel(nest, wl.Transforms)
	if err := f.emitNest(w, nest); err != nil {
		return "", err
	}
	f.temps = append(f.temps, out)
	if !f.g.opts.Optimize {
		// Library-style baseline of §III-A.4: the with-loop result is
		// copied into its destination instead of moved.
		return f.temp("cm_mat *", fmt.Sprintf("cm_copy(%s)", out)), nil
	}
	return out, nil
}

func (f *fnEmitter) emitFold(w *wlState, wl *ast.WithLoop, op *ast.FoldOp,
	los, his []loopir.Expr) (string, error) {
	resTy := f.g.info.TypeOf(wl)
	accType := "float"
	if resTy.Kind == types.Int {
		accType = "long"
	}
	initV, err := f.expr(op.Init)
	if err != nil {
		return "", err
	}
	acc := f.g.fresh("acc")
	w.hoist(accType, acc, fmt.Sprintf("(%s)(%s)", accType, initV))

	var inner []loopir.Stmt
	pre, val, ok := w.lowerBody(op.Body)
	if ok {
		inner = append(pre, &loopir.AssignStmt{LHS: loopir.V(acc), RHS: foldCombine(op.Kind, loopir.V(acc), val)})
	} else {
		raw, cval, err := f.generalBody(op.Body)
		if err != nil {
			return "", err
		}
		raw += fmt.Sprintf("%s = %s;\n", acc, foldCombine(op.Kind, loopir.V(acc), loopir.V("("+cval+")")))
		inner = []loopir.Stmt{&loopir.Raw{Code: strings.TrimRight(raw, "\n")}}
	}
	nest := buildNest(wl.Ids, los, his, inner)
	nest, err = f.applyTransforms(nest, wl.Transforms)
	if err != nil {
		return "", err
	}
	// Folds run sequentially in generated code (the parallel construct
	// is the enclosing genarray, as in Fig 1); see DESIGN.md.
	if err := f.emitNest(w, nest); err != nil {
		return "", err
	}
	return acc, nil
}

func foldCombine(kind ast.FoldKind, acc, v loopir.Expr) loopir.Expr {
	switch kind {
	case ast.FoldAdd:
		return loopir.B("+", acc, v)
	case ast.FoldMul:
		return loopir.B("*", acc, v)
	case ast.FoldMin:
		return &loopir.Cond{C: loopir.B("<", acc, v), T: acc, F: v}
	default:
		return &loopir.Cond{C: loopir.B(">", acc, v), T: acc, F: v}
	}
}

func buildNest(ids []string, los, his []loopir.Expr, inner []loopir.Stmt) []loopir.Stmt {
	body := inner
	for d := len(ids) - 1; d >= 0; d-- {
		body = []loopir.Stmt{&loopir.Loop{
			Index: cname(ids[d]), Lo: los[d], Hi: his[d], Body: body}}
	}
	return body
}

// transposeSource reports whether a genarray is a whole-shape
// transpose — rank 2, zero lower bounds, upper bounds syntactically
// equal to the shape, and a body that is exactly src[j, i] on a
// rank-2 matrix of the result's element kind — returning the source
// matrix name. Only the optimized build takes the fast path; the
// ablation baseline keeps its bounds-checked accessor nest. The
// kernel runs serially even in pthread mode: a blocked transpose on
// the pool would be coordination-bound at these tile sizes.
func (w *wlState) transposeSource(wl *ast.WithLoop, op *ast.GenArrayOp,
	resTy *types.Type) (string, bool) {
	if !w.f.g.opts.Optimize || len(wl.Ids) != 2 || len(wl.Transforms) != 0 {
		return "", false
	}
	for d := 0; d < 2; d++ {
		lo, ok := wl.Lower[d].(*ast.IntLit)
		if !ok || lo.Value != 0 || !sameBound(wl.Upper[d], op.Shape[d]) {
			return "", false
		}
	}
	ix, ok := op.Body.(*ast.IndexExpr)
	if !ok || len(ix.Args) != 2 {
		return "", false
	}
	base, ok := ix.X.(*ast.Ident)
	if !ok || w.ids[base.Name] {
		return "", false
	}
	ty := w.varType(base.Name)
	if ty == nil || ty.Kind != types.Matrix || ty.Rank != 2 ||
		ty.Elem.Kind != resTy.Elem.Kind {
		return "", false
	}
	for d, want := range []string{wl.Ids[1], wl.Ids[0]} {
		sc, ok := ix.Args[d].(*ast.IdxScalar)
		if !ok {
			return "", false
		}
		id, ok := sc.X.(*ast.Ident)
		if !ok || id.Name != want {
			return "", false
		}
	}
	return base.Name, true
}

// sameBound: syntactic equality for the bound forms boundExpr keeps
// cheap — integer literals and plain identifiers. Anything else is
// conservatively unequal (each side would hoist to its own variable).
func sameBound(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.IntLit:
		bl, ok := b.(*ast.IntLit)
		return ok && a.Value == bl.Value
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && a.Name == bi.Name
	}
	return false
}

// boundExpr evaluates a with-loop bound or shape expression: integer
// literals stay as IR constants (so transformations like split see
// zero-based, constant-trip loops); anything else is evaluated once
// and hoisted into a variable.
func (w *wlState) boundExpr(e ast.Expr) (loopir.Expr, error) {
	if lit, ok := e.(*ast.IntLit); ok {
		return loopir.IC(lit.Value), nil
	}
	v, err := w.f.expr(e)
	if err != nil {
		return nil, err
	}
	return loopir.V(w.hoist("long", w.f.g.fresh("b"), v)), nil
}

// applyTransforms runs the §V clauses against the nest.
func (f *fnEmitter) applyTransforms(nest []loopir.Stmt, clauses []ast.TransformClause) ([]loopir.Stmt, error) {
	var err error
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.SplitClause:
			nest, err = loopir.Split(nest, cname(c.Index), c.Factor.(*ast.IntLit).Value,
				cname(c.Inner), cname(c.Outer))
		case *ast.VectorizeClause:
			nest, err = loopir.Vectorize(nest, cname(c.Index))
			if err == nil {
				f.g.usesVectors = true
			}
		case *ast.ParallelizeClause:
			nest, err = loopir.Parallelize(nest, cname(c.Index))
		case *ast.ReorderClause:
			order := make([]string, len(c.Indices))
			for i, n := range c.Indices {
				order[i] = cname(n)
			}
			nest, err = loopir.Reorder(nest, order)
		case *ast.TileClause:
			nest, err = loopir.Tile(nest, cname(c.IndexA), c.FactorA.(*ast.IntLit).Value,
				cname(c.IndexB), c.FactorB.(*ast.IntLit).Value)
		case *ast.UnrollClause:
			nest, err = loopir.Unroll(nest, cname(c.Index), c.Factor.(*ast.IntLit).Value)
		}
		if err != nil {
			return nil, fmt.Errorf("cgen: %w", err)
		}
	}
	return nest, nil
}

// autoParallel marks the outermost loop parallel (§III-C automatic
// parallelization) unless the user gave explicit transform clauses —
// then their parallelize decision stands alone.
func (f *fnEmitter) autoParallel(nest []loopir.Stmt, clauses []ast.TransformClause) {
	if f.g.opts.Par == ParNone || len(clauses) > 0 {
		return
	}
	for _, s := range nest {
		if l, ok := s.(*loopir.Loop); ok {
			l.Parallel = true
			return
		}
	}
}
