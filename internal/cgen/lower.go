// Scalar body lowering for with-loops: the path that produces the
// Fig 3 loop nests with direct strided element access (slice
// elimination, §III-A.4), including nested scalar folds.
package cgen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/loopir"
	"repro/internal/types"
)

// lowerBody tries to lower a with-loop body expression to a scalar
// loopir expression (plus prelude statements for nested folds).
// ok == false means the caller must use the general fallback.
func (w *wlState) lowerBody(e ast.Expr) (pre []loopir.Stmt, val loopir.Expr, ok bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return nil, loopir.IC(e.Value), true
	case *ast.FloatLit:
		return nil, loopir.FC(e.Value), true
	case *ast.BoolLit:
		if e.Value {
			return nil, loopir.IC(1), true
		}
		return nil, loopir.IC(0), true

	case *ast.Ident:
		if w.ids[e.Name] {
			return nil, loopir.V(cname(e.Name)), true
		}
		ty := w.varType(e.Name)
		if ty == nil || !ty.IsScalar() {
			return nil, nil, false
		}
		return nil, loopir.V(cname(e.Name)), true

	case *ast.BinaryExpr:
		if w.f.g.info.TypeOf(e).IsMatrix() {
			return nil, nil, false
		}
		lp, lv, ok := w.lowerBody(e.L)
		if !ok {
			return nil, nil, false
		}
		rp, rv, ok := w.lowerBody(e.R)
		if !ok {
			return nil, nil, false
		}
		op, ok := cOpScalar[e.Op]
		if !ok {
			return nil, nil, false
		}
		return append(lp, rp...), loopir.B(op, lv, rv), true

	case *ast.UnaryExpr:
		p, v, ok := w.lowerBody(e.X)
		if !ok {
			return nil, nil, false
		}
		if e.Op == ast.OpNeg {
			return p, &loopir.Un{Op: "-", X: v}, true
		}
		return p, &loopir.Un{Op: "!", X: v}, true

	case *ast.CastExpr:
		p, v, ok := w.lowerBody(e.X)
		if !ok {
			return nil, nil, false
		}
		switch e.To {
		case ast.PrimInt:
			return p, &loopir.Un{Op: "(long)", X: v}, true
		case ast.PrimFloat:
			return p, &loopir.Un{Op: "(float)", X: v}, true
		}
		return nil, nil, false

	case *ast.CallExpr:
		if e.Fun == "dimSize" {
			m, okm := e.Args[0].(*ast.Ident)
			if !okm || !w.f.g.info.TypeOf(e.Args[0]).IsMatrix() {
				return nil, nil, false
			}
			p, d, ok := w.lowerBody(e.Args[1])
			if !ok {
				return nil, nil, false
			}
			return p, loopir.Call("cm_dim", loopir.V(cname(m.Name)), d), true
		}
		return nil, nil, false

	case *ast.EndExpr:
		if len(w.endStk) == 0 {
			return nil, nil, false
		}
		return nil, w.endStk[len(w.endStk)-1](), true

	case *ast.IndexExpr:
		return w.lowerIndex(e)

	case *ast.WithLoop:
		fo, isFold := e.Op.(*ast.FoldOp)
		if !isFold {
			return nil, nil, false
		}
		return w.lowerNestedFold(e, fo)
	}
	return nil, nil, false
}

// varType resolves the semantic type of a user variable during
// lowering.
func (w *wlState) varType(name string) *types.Type {
	if t, ok := w.f.vars[name]; ok {
		return t
	}
	if t, ok := w.f.g.info.GlobalTypes[name]; ok {
		return t
	}
	return nil
}

// lowerIndex compiles m[i, j, k] with all-scalar indices into either a
// direct strided load (slice elimination, -O) or a bounds-checked
// runtime accessor call (the ablation baseline).
func (w *wlState) lowerIndex(e *ast.IndexExpr) (pre []loopir.Stmt, val loopir.Expr, ok bool) {
	base, isIdent := e.X.(*ast.Ident)
	if !isIdent {
		return nil, nil, false
	}
	baseTy := w.varType(base.Name)
	if baseTy == nil || baseTy.Kind != types.Matrix || len(e.Args) != baseTy.Rank {
		return nil, nil, false
	}
	cn := cname(base.Name)
	idxs := make([]loopir.Expr, len(e.Args))
	for d, a := range e.Args {
		sc, isScalar := a.(*ast.IdxScalar)
		if !isScalar || w.f.g.info.TypeOf(sc.X).Kind != types.Int {
			return nil, nil, false
		}
		// bind 'end' to shape[d]-1; the dim variable is hoisted only
		// if 'end' actually occurs in this index expression
		dd := d
		w.endStk = append(w.endStk, func() loopir.Expr {
			return loopir.B("-", loopir.V(w.dimVar(cn, dd)), loopir.IC(1))
		})
		p, v, ok := w.lowerBody(sc.X)
		w.endStk = w.endStk[:len(w.endStk)-1]
		if !ok {
			return nil, nil, false
		}
		pre = append(pre, p...)
		idxs[d] = v
	}
	if !w.f.g.opts.Optimize {
		// Baseline: bounds-checked accessor (no slice elimination).
		args := append([]loopir.Expr{loopir.V(cn)}, idxs...)
		call := loopir.Call(fmt.Sprintf("cm_at%d", len(idxs)), args...)
		if baseTy.Elem.Kind == types.Int {
			return pre, &loopir.Un{Op: "(long)", X: call}, true
		}
		return pre, &loopir.Un{Op: "(float)", X: call}, true
	}
	// Direct load through hoisted data and stride pointers.
	dn := w.dataVar(cn, baseTy)
	var linear loopir.Expr
	for d, idx := range idxs {
		term := loopir.Expr(idx)
		if baseTy.Rank > 1 {
			term = loopir.B("*", idx, loopir.V(w.strideVar(cn, d)))
		}
		if linear == nil {
			linear = term
		} else {
			linear = loopir.B("+", linear, term)
		}
	}
	return pre, loopir.Ld(dn, linear), true
}

// dimVar hoists (once) a variable holding cm_dim(m, d).
func (w *wlState) dimVar(cn string, d int) string {
	name := fmt.Sprintf("%s_dim%d_w%d", cn, d, w.uid)
	if _, done := w.varTypes[name]; !done {
		w.hoist("long", name, fmt.Sprintf("%s->shape[%d]", cn, d))
	}
	return name
}

// dataVar hoists (once) the matrix's raw data pointer.
func (w *wlState) dataVar(cn string, ty *types.Type) string {
	name := fmt.Sprintf("%s_d_w%d", cn, w.uid)
	if _, done := w.varTypes[name]; !done {
		w.hoist(cElemType(ty)+" *", name, cn+"->"+dataField(ty))
	}
	return name
}

// strideVar hoists (once) one stride of the matrix.
func (w *wlState) strideVar(cn string, d int) string {
	name := fmt.Sprintf("%s_s%d_w%d", cn, d, w.uid)
	if _, done := w.varTypes[name]; !done {
		w.hoist("long", name, fmt.Sprintf("%s->strides[%d]", cn, d))
	}
	return name
}

// lowerNestedFold lowers an inner scalar fold with-loop (the Fig 1 →
// Fig 3 pattern) to an accumulator declaration plus a loop.
func (w *wlState) lowerNestedFold(wl *ast.WithLoop, fo *ast.FoldOp) (pre []loopir.Stmt, val loopir.Expr, ok bool) {
	rank := len(wl.Ids)
	los := make([]loopir.Expr, rank)
	his := make([]loopir.Expr, rank)
	for d := 0; d < rank; d++ {
		p, lo, ok := w.lowerBody(wl.Lower[d])
		if !ok {
			return nil, nil, false
		}
		pre = append(pre, p...)
		p2, hi, ok := w.lowerBody(wl.Upper[d])
		if !ok {
			return nil, nil, false
		}
		pre = append(pre, p2...)
		los[d], his[d] = lo, hi
	}
	pInit, initV, ok := w.lowerBody(fo.Init)
	if !ok {
		return nil, nil, false
	}
	pre = append(pre, pInit...)
	for _, id := range wl.Ids {
		w.ids[id] = true
	}
	bodyPre, bodyV, ok := w.lowerBody(fo.Body)
	for _, id := range wl.Ids {
		delete(w.ids, id)
	}
	if !ok {
		return nil, nil, false
	}
	resTy := w.f.g.info.TypeOf(wl)
	accType := "float"
	if resTy.Kind == types.Int {
		accType = "long"
	}
	w.seq++
	acc := fmt.Sprintf("_acc%d_%d", w.f.g.tmpN, w.seq)
	pre = append(pre, &loopir.DeclStmt{CType: accType, Name: acc,
		Init: &loopir.Un{Op: "(" + accType + ")", X: initV}})
	inner := append(bodyPre,
		&loopir.AssignStmt{LHS: loopir.V(acc), RHS: foldCombine(fo.Kind, loopir.V(acc), bodyV)})
	body := inner
	for d := rank - 1; d >= 0; d-- {
		body = []loopir.Stmt{&loopir.Loop{Index: cname(wl.Ids[d]), Lo: los[d], Hi: his[d], Body: body}}
	}
	pre = append(pre, body...)
	return pre, loopir.V(acc), true
}

// generalBody translates an arbitrary body expression with the general
// expression emitter, for nests whose bodies are not scalar-lowerable.
// It returns raw C statements plus the C expression of the body value.
func (f *fnEmitter) generalBody(e ast.Expr) (string, string, error) {
	sub := f.g.newFnEmitter(f.fn)
	sub.vars = f.vars
	sub.endCtx = f.endCtx
	val, err := sub.expr(e)
	if err != nil {
		return "", "", err
	}
	// Materialize before releasing body temporaries.
	ty := f.g.info.TypeOf(e)
	ctype := "double"
	if ty.Kind == types.Int {
		ctype = "long"
	}
	res := f.g.fresh("bv")
	sub.b.line("%s %s = (%s)(%s);", ctype, res, ctype, val)
	sub.releaseTemps()
	return sub.b.String(), res, nil
}
