package cgen

import (
	"os/exec"
	"strings"
	"testing"
)

const cilkFibSrc = `
int fib(int n) {
	if (n < 2) return n;
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);
	b = fib(n - 2);
	sync;
	return a + b;
}
int main() {
	int r = 0;
	spawn r = fib(10);
	sync;
	print(r);
	return 0;
}
`

const cilkMatrixSrc = `
Matrix float <1> scale(Matrix float <1> v, float f) {
	int n = dimSize(v, 0);
	return with ([0] <= [i] < [n]) genarray([n], v[i] * f);
}
int main() {
	Matrix float <1> a = [1 :: 4] * 1.0;
	Matrix float <1> x;
	Matrix float <1> y;
	spawn x = scale(a, 2.0);
	spawn y = scale(a, 3.0);
	sync;
	print(x[3]);
	print(y[3]);
	return 0;
}
`

// The generated Cilk C contains the lifted spawn sites and the task
// runtime (§VIII: a run-time delivered as a pluggable extension).
func TestCilkCodegenShape(t *testing.T) {
	c := gen(t, cilkFibSrc, Options{Par: ParNone, Optimize: true})
	for _, want := range []string{
		"cm_spawn_push",
		"cm_sync_from(_cilk_mark)",
		"_spwrap1",
		"_spfini1",
		"pthread_create",
		"int _cilk_mark = cm_ntasks",
		"implicit sync at function exit",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
}

// Compiled Cilk programs must run and agree with the interpreter.
func TestCilkCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	for name, src := range map[string]string{"fib": cilkFibSrc, "matrix": cilkMatrixSrc} {
		t.Run(name, func(t *testing.T) {
			want := runInterp(t, src, nil, 1)
			dir := t.TempDir()
			c := gen(t, src, Options{Par: ParNone, Optimize: true})
			bin := compileC(t, c, dir)
			cmd := exec.Command(bin)
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("compiled cilk program failed: %v\n%s", err, out)
			}
			if string(out) != want {
				t.Fatalf("stdout differs:\ncompiled: %q\ninterp:   %q", out, want)
			}
		})
	}
}

// Globals (including matrix globals initialized in the main wrapper)
// compile and run correctly alongside spawns.
func TestGlobalsCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const src = `
int scalarG = 40;
Matrix float <1> table = [1 :: 5] * 0.5;
int lookup(int i) { return (int)(table[i] * 4.0); }
int main() {
	print(scalarG + lookup(0));
	scalarG = scalarG + 1;
	print(scalarG);
	print(table[4]);
	return 0;
}
`
	want := runInterp(t, src, nil, 1)
	dir := t.TempDir()
	c := gen(t, src, Options{Par: ParNone, Optimize: true})
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("compiled program failed: %v\n%s", err, out)
	}
	if string(out) != want {
		t.Fatalf("stdout differs:\ncompiled: %q\ninterp:   %q", out, want)
	}
}

// matrixMapG compiled: the shape-changing map must work in C too.
func TestMatrixMapGCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const src = `
Matrix float <1> firstHalf(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return ts[0 : n / 2 - 1];
}
int main() {
	Matrix float <2> d = init(Matrix float <2>, 3, 8);
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 8; j++) {
			d[i, j] = (float)(i * 8 + j);
		}
	}
	Matrix float <2> out;
	out = matrixMapG(firstHalf, d, [1]);
	print(dimSize(out, 1));
	print(out[2, 3]);
	return 0;
}
`
	want := runInterp(t, src, nil, 1)
	dir := t.TempDir()
	c := gen(t, src, Options{Par: ParPthread, Optimize: true})
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin, "-t", "2")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("compiled matrixMapG failed: %v\n%s", err, out)
	}
	if string(out) != want {
		t.Fatalf("stdout differs:\ncompiled: %q\ninterp:   %q", out, want)
	}
}

// 'end' inside a with-loop body exercises the structured lowering's
// lazily hoisted dimension variables; compiled output must match the
// interpreter.
func TestEndInWithLoopBodyCompiled(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const src = `
int main() {
	Matrix float <1> v = [10 :: 17] * 1.0;
	int n = dimSize(v, 0);
	// reversed[i] = v[end - i]
	Matrix float <1> rev;
	rev = with ([0] <= [i] < [n]) genarray([n], v[end - i]);
	print(rev[0]);
	print(rev[7]);
	return 0;
}
`
	want := runInterp(t, src, nil, 1)
	dir := t.TempDir()
	c := gen(t, src, Options{Par: ParNone, Optimize: true})
	if !strings.Contains(c, "u_v_dim0") {
		t.Fatal("expected a hoisted dimension variable for 'end'")
	}
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("compiled program failed: %v\n%s", err, out)
	}
	if string(out) != want {
		t.Fatalf("stdout differs:\ncompiled: %q\ninterp:   %q", out, want)
	}
}
