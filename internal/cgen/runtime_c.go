// The C runtime prelude emitted at the top of every translation unit.
// It implements, in plain C, the substrate the paper's generated code
// relies on: the reference-counted matrix representation of §III-B
// (a count attached to every allocation), MATLAB-style index
// evaluation, overloaded elementwise arithmetic, and the enhanced
// fork-join pthread pool of §III-C — threads spawned once at startup
// that spin until the main thread releases work and then return to the
// spin lock through a stop barrier.
package cgen

// cRuntime is the prelude text. It is self-contained C99 + pthreads.
const cRuntime = `/* ---- CMINUS matrix runtime (generated; do not edit) ---- */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <pthread.h>
#include <sched.h>

#define CM_MAX_RANK 8

enum { CM_FLOAT = 0, CM_INT = 1, CM_BOOL = 2 };
enum { CM_ADD, CM_SUB, CM_MUL, CM_DIV, CM_MOD,
       CM_EQ, CM_NE, CM_LT, CM_LE, CM_GT, CM_GE, CM_AND, CM_OR };

typedef struct cm_mat {
    int rc;                 /* the 4-byte reference count of the paper */
    int elem;
    int rank;
    long shape[CM_MAX_RANK];
    long strides[CM_MAX_RANK];
    long size;
    float *f; long *i; unsigned char *b;
} cm_mat;

static void cm_die(const char *msg) {
    fprintf(stderr, "runtime error: %s\n", msg);
    exit(2);
}

static cm_mat *cm_alloc(int elem, int rank, const long *shape) {
    cm_mat *m = (cm_mat *)calloc(1, sizeof(cm_mat));
    if (!m) cm_die("out of memory");
    m->rc = 1; m->elem = elem; m->rank = rank;
    long size = 1;
    for (int d = 0; d < rank; d++) { m->shape[d] = shape[d]; size *= shape[d]; }
    long acc = 1;
    for (int d = rank - 1; d >= 0; d--) { m->strides[d] = acc; acc *= shape[d]; }
    m->size = size;
    switch (elem) {
    case CM_FLOAT: m->f = (float *)calloc(size ? size : 1, sizeof(float)); break;
    case CM_INT:   m->i = (long *)calloc(size ? size : 1, sizeof(long)); break;
    default:       m->b = (unsigned char *)calloc(size ? size : 1, 1); break;
    }
    return m;
}

static void cm_incref(cm_mat *m) {
    if (m) __atomic_add_fetch(&m->rc, 1, __ATOMIC_SEQ_CST);
}
static void cm_decref(cm_mat *m) {
    if (!m) return;
    if (__atomic_sub_fetch(&m->rc, 1, __ATOMIC_SEQ_CST) == 0) {
        free(m->f); free(m->i); free(m->b); free(m);
    }
}

static long cm_dim(cm_mat *m, long d) {
    if (!m || d < 0 || d >= m->rank) cm_die("dimSize out of range");
    return m->shape[d];
}

static double cm_get(cm_mat *m, long off) {
    switch (m->elem) {
    case CM_FLOAT: return m->f[off];
    case CM_INT:   return (double)m->i[off];
    default:       return m->b[off] ? 1.0 : 0.0;
    }
}
static void cm_put(cm_mat *m, long off, double v) {
    switch (m->elem) {
    case CM_FLOAT: m->f[off] = (float)v; break;
    case CM_INT:   m->i[off] = (long)v; break;
    default:       m->b[off] = v != 0.0; break;
    }
}

/* Cache-blocked 2-D transpose fast path: dst[i][j] = src[j][i]. The
   compiler emits this for genarray bodies that are exactly m[j, i]
   over the full output shape, replacing the strided loop nest whose
   inner stride would be the source row length. */
#define CM_TBLK 32
#define CM_TRANS_LOOP(D, S) \
    for (long ii = 0; ii < r; ii += CM_TBLK) \
        for (long jj = 0; jj < c; jj += CM_TBLK) { \
            long ih = ii + CM_TBLK < r ? ii + CM_TBLK : r; \
            long jh = jj + CM_TBLK < c ? jj + CM_TBLK : c; \
            for (long i = ii; i < ih; i++) \
                for (long j = jj; j < jh; j++) \
                    D[i * c + j] = S[j * ld + i]; \
        }
static void cm_transpose(cm_mat *dst, const cm_mat *src) {
    if (!dst || !src) cm_die("transpose kernel on null matrix");
    long r = dst->shape[0], c = dst->shape[1], ld = src->shape[1];
    if (dst->rank != 2 || src->rank != 2
        || dst->elem != src->elem || src->shape[0] < c || ld < r)
        cm_die("transpose kernel shape mismatch");
    switch (dst->elem) {
    case CM_FLOAT: CM_TRANS_LOOP(dst->f, src->f); break;
    case CM_INT:   CM_TRANS_LOOP(dst->i, src->i); break;
    default:       CM_TRANS_LOOP(dst->b, src->b); break;
    }
}

/* ---- index specs (scalar / inclusive range / ':' / logical mask) ---- */
typedef struct { int kind; long i, lo, hi; cm_mat *mask; } cm_spec;
enum { CM_SPEC_SCALAR, CM_SPEC_RANGE, CM_SPEC_ALL, CM_SPEC_MASK };
static cm_spec cm_scalar(long i) { cm_spec s = {CM_SPEC_SCALAR, i, 0, 0, 0}; return s; }
static cm_spec cm_span(long lo, long hi) { cm_spec s = {CM_SPEC_RANGE, 0, lo, hi, 0}; return s; }
static cm_spec cm_allspec(void) { cm_spec s = {CM_SPEC_ALL, 0, 0, 0, 0}; return s; }
static cm_spec cm_maskspec(cm_mat *m) { cm_spec s = {CM_SPEC_MASK, 0, 0, 0, m}; return s; }

typedef struct { long n; long *list; long scalar; } cm_sel1;

static void cm_resolve1(cm_spec sp, long dimsize, int d, cm_sel1 *out) {
    out->list = 0; out->n = -1;
    switch (sp.kind) {
    case CM_SPEC_SCALAR:
        if (sp.i < 0 || sp.i >= dimsize) cm_die("index out of range");
        out->scalar = sp.i; return;
    case CM_SPEC_RANGE: {
        if (sp.lo < 0 || sp.hi >= dimsize || sp.lo > sp.hi) cm_die("bad index range");
        out->n = sp.hi - sp.lo + 1;
        out->list = (long *)malloc(out->n * sizeof(long));
        for (long k = 0; k < out->n; k++) out->list[k] = sp.lo + k;
        return; }
    case CM_SPEC_ALL: {
        out->n = dimsize;
        out->list = (long *)malloc((dimsize ? dimsize : 1) * sizeof(long));
        for (long k = 0; k < dimsize; k++) out->list[k] = k;
        return; }
    default: {
        cm_mat *mk = sp.mask;
        if (!mk || mk->elem != CM_BOOL || mk->rank != 1 || mk->size != dimsize)
            cm_die("bad logical index");
        long n = 0;
        for (long k = 0; k < dimsize; k++) if (mk->b[k]) n++;
        out->n = n;
        out->list = (long *)malloc((n ? n : 1) * sizeof(long));
        n = 0;
        for (long k = 0; k < dimsize; k++) if (mk->b[k]) out->list[n++] = k;
        return; }
    }
}

/* visit the cross product of selections; returns number of cells */
static void cm_sel_free(cm_sel1 *sel, int rank) {
    for (int d = 0; d < rank; d++) free(sel[d].list);
}

static cm_mat *cm_index(cm_mat *m, int n, cm_spec *specs) {
    if (!m) cm_die("index of unassigned matrix");
    if (n != m->rank) cm_die("wrong number of indices");
    cm_sel1 sel[CM_MAX_RANK];
    long outshape[CM_MAX_RANK]; int outrank = 0;
    for (int d = 0; d < n; d++) {
        cm_resolve1(specs[d], m->shape[d], d, &sel[d]);
        if (sel[d].n >= 0) outshape[outrank++] = sel[d].n;
    }
    if (outrank == 0) cm_die("cm_index used for all-scalar selection");
    cm_mat *out = cm_alloc(m->elem, outrank, outshape);
    long counters[CM_MAX_RANK] = {0};
    for (long cell = 0; cell < out->size; cell++) {
        long src = 0; int kd = 0;
        for (int d = 0; d < n; d++) {
            long pos = (sel[d].n >= 0) ? sel[d].list[counters[kd++]] : sel[d].scalar;
            src += pos * m->strides[d];
        }
        cm_put(out, cell, cm_get(m, src));
        for (int k = outrank - 1; k >= 0; k--) {
            if (++counters[k] < outshape[k]) break;
            counters[k] = 0;
        }
    }
    cm_sel_free(sel, n);
    return out;
}

static double cm_index_scalar(cm_mat *m, int n, cm_spec *specs) {
    if (!m) cm_die("index of unassigned matrix");
    if (n != m->rank) cm_die("wrong number of indices");
    long off = 0;
    for (int d = 0; d < n; d++) {
        if (specs[d].kind != CM_SPEC_SCALAR) cm_die("non-scalar index in scalar load");
        if (specs[d].i < 0 || specs[d].i >= m->shape[d]) cm_die("index out of range");
        off += specs[d].i * m->strides[d];
    }
    return cm_get(m, off);
}

static void cm_store(cm_mat *m, int n, cm_spec *specs, cm_mat *src) {
    if (!m) cm_die("store into unassigned matrix");
    cm_sel1 sel[CM_MAX_RANK];
    long outshape[CM_MAX_RANK]; int outrank = 0; long total = 1;
    for (int d = 0; d < n; d++) {
        cm_resolve1(specs[d], m->shape[d], d, &sel[d]);
        if (sel[d].n >= 0) { outshape[outrank++] = sel[d].n; total *= sel[d].n; }
    }
    if (src->size != total) cm_die("store size mismatch");
    long counters[CM_MAX_RANK] = {0};
    for (long cell = 0; cell < total; cell++) {
        long dst = 0; int kd = 0;
        for (int d = 0; d < n; d++) {
            long pos = (sel[d].n >= 0) ? sel[d].list[counters[kd++]] : sel[d].scalar;
            dst += pos * m->strides[d];
        }
        cm_put(m, dst, cm_get(src, cell));
        for (int k = outrank - 1; k >= 0; k--) {
            if (++counters[k] < outshape[k]) break;
            counters[k] = 0;
        }
    }
    cm_sel_free(sel, n);
}

static void cm_store_scalar(cm_mat *m, int n, cm_spec *specs, double v) {
    if (!m) cm_die("store into unassigned matrix");
    long off = 0;
    for (int d = 0; d < n; d++) {
        if (specs[d].kind != CM_SPEC_SCALAR) cm_die("non-scalar index in scalar store");
        if (specs[d].i < 0 || specs[d].i >= m->shape[d]) cm_die("index out of range");
        off += specs[d].i * m->strides[d];
    }
    cm_put(m, off, v);
}

/* ---- overloaded arithmetic (§III-A.2) ---- */
static double cm_apply(int op, double a, double b) {
    switch (op) {
    case CM_ADD: return a + b;
    case CM_SUB: return a - b;
    case CM_MUL: return a * b;
    case CM_DIV: return a / b;
    case CM_MOD: return (double)((long)a % (long)b);
    case CM_EQ:  return a == b;
    case CM_NE:  return a != b;
    case CM_LT:  return a < b;
    case CM_LE:  return a <= b;
    case CM_GT:  return a > b;
    case CM_GE:  return a >= b;
    case CM_AND: return (a != 0) && (b != 0);
    default:     return (a != 0) || (b != 0);
    }
}

static int cm_result_elem(int op, int ea, int eb) {
    if (op >= CM_EQ) return CM_BOOL;
    if (ea == CM_FLOAT || eb == CM_FLOAT) return CM_FLOAT;
    return CM_INT;
}

static cm_mat *cm_ew(int op, cm_mat *a, cm_mat *b) {
    if (!a || !b) cm_die("elementwise op on unassigned matrix");
    if (a->rank != b->rank || a->size != b->size) cm_die("shape mismatch");
    for (int d = 0; d < a->rank; d++)
        if (a->shape[d] != b->shape[d]) cm_die("shape mismatch");
    cm_mat *out = cm_alloc(cm_result_elem(op, a->elem, b->elem), a->rank, a->shape);
    long size = a->size;
    /* Typed fast paths: the hot arithmetic combinations run directly on
       the backing arrays instead of boxing every element through
       cm_get/cm_apply/cm_put (mirrors the Go runtime's kernels). */
    if (a->elem == CM_FLOAT && b->elem == CM_FLOAT && op <= CM_DIV) {
        const float *x = a->f, *y = b->f; float *d = out->f;
        switch (op) {
        case CM_ADD: for (long k = 0; k < size; k++) d[k] = x[k] + y[k]; break;
        case CM_SUB: for (long k = 0; k < size; k++) d[k] = x[k] - y[k]; break;
        case CM_MUL: for (long k = 0; k < size; k++) d[k] = x[k] * y[k]; break;
        default:     for (long k = 0; k < size; k++) d[k] = x[k] / y[k]; break;
        }
        return out;
    }
    if (a->elem == CM_INT && b->elem == CM_INT && op <= CM_MUL) {
        const long *x = a->i, *y = b->i; long *d = out->i;
        switch (op) {
        case CM_ADD: for (long k = 0; k < size; k++) d[k] = x[k] + y[k]; break;
        case CM_SUB: for (long k = 0; k < size; k++) d[k] = x[k] - y[k]; break;
        default:     for (long k = 0; k < size; k++) d[k] = x[k] * y[k]; break;
        }
        return out;
    }
    for (long k = 0; k < size; k++)
        cm_put(out, k, cm_apply(op, cm_get(a, k), cm_get(b, k)));
    return out;
}

static cm_mat *cm_bc(int op, cm_mat *a, double s, int sElem, int matLeft) {
    if (!a) cm_die("broadcast op on unassigned matrix");
    cm_mat *out = cm_alloc(cm_result_elem(op, a->elem, sElem), a->rank, a->shape);
    for (long k = 0; k < a->size; k++) {
        double v = matLeft ? cm_apply(op, cm_get(a, k), s) : cm_apply(op, s, cm_get(a, k));
        cm_put(out, k, v);
    }
    return out;
}

static cm_mat *cm_matmul(cm_mat *a, cm_mat *b) {
    if (!a || !b || a->rank != 2 || b->rank != 2 || a->shape[1] != b->shape[0])
        cm_die("bad matmul operands");
    long m = a->shape[0], kk = a->shape[1], n = b->shape[1];
    long shp[2] = {m, n};
    int elem = (a->elem == CM_INT && b->elem == CM_INT) ? CM_INT : CM_FLOAT;
    cm_mat *out = cm_alloc(elem, 2, shp);
    /* i-k-j loop order: the inner loop walks one row of b and the
       accumulator row sequentially (unit stride), unlike the naive
       i-j-k order which strides down b's columns. */
    if (elem == CM_INT) {
        /* exact in long; k-blocked so a block of b's rows stays
           cache-resident across the output rows that stream it */
        const long BK = 128;
        for (long k0 = 0; k0 < kk; k0 += BK) {
            long k1 = k0 + BK < kk ? k0 + BK : kk;
            for (long i = 0; i < m; i++) {
                long *row = out->i + i * n;
                const long *ar = a->i + i * kk;
                for (long x = k0; x < k1; x++) {
                    long av = ar[x];
                    const long *br = b->i + x * n;
                    for (long j = 0; j < n; j++) row[j] += av * br[j];
                }
            }
        }
        return out;
    }
    /* float result: accumulate each output row in double (at least the
       precision of the previous per-cell double accumulator), then
       store once as float */
    double *acc = (double *)calloc(n ? n : 1, sizeof(double));
    if (!acc) cm_die("out of memory");
    int fastFF = (a->elem == CM_FLOAT && b->elem == CM_FLOAT);
    for (long i = 0; i < m; i++) {
        for (long j = 0; j < n; j++) acc[j] = 0;
        for (long x = 0; x < kk; x++) {
            double av = fastFF ? a->f[i * kk + x] : cm_get(a, i * kk + x);
            if (fastFF) {
                const float *br = b->f + x * n;
                for (long j = 0; j < n; j++) acc[j] += av * br[j];
            } else {
                for (long j = 0; j < n; j++) acc[j] += av * cm_get(b, x * n + j);
            }
        }
        float *row = out->f + i * n;
        for (long j = 0; j < n; j++) row[j] = (float)acc[j];
    }
    free(acc);
    return out;
}

static cm_mat *cm_unary(int neg, cm_mat *a) {
    if (!a) cm_die("unary op on unassigned matrix");
    cm_mat *out = cm_alloc(a->elem, a->rank, a->shape);
    for (long k = 0; k < a->size; k++)
        cm_put(out, k, neg ? -cm_get(a, k) : !(cm_get(a, k) != 0));
    return out;
}

static cm_mat *cm_rangevec(long lo, long hi) {
    long n = hi >= lo ? hi - lo + 1 : 0;
    long shp[1] = {n};
    cm_mat *out = cm_alloc(CM_INT, 1, shp);
    for (long k = 0; k < n; k++) out->i[k] = lo + k;
    return out;
}

/* ---- matrix file I/O (CMXM format, matching internal/matio) ---- */
static cm_mat *cm_read(const char *name) {
    FILE *fp = fopen(name, "rb");
    if (!fp) cm_die("readMatrix: cannot open file");
    char mg[4];
    long head[2];
    if (fread(mg, 1, 4, fp) != 4 || memcmp(mg, "CMXM", 4) != 0) cm_die("bad matrix file");
    if (fread(head, 8, 2, fp) != 2) cm_die("bad matrix header");
    long elem = head[0], rank = head[1];
    if (rank < 1 || rank > CM_MAX_RANK) cm_die("bad matrix rank");
    long shape[CM_MAX_RANK];
    if (fread(shape, 8, rank, fp) != (size_t)rank) cm_die("bad matrix shape");
    /* file stores float64/int64/bool8 */
    cm_mat *m = cm_alloc(elem == 0 ? CM_FLOAT : (elem == 1 ? CM_INT : CM_BOOL), (int)rank, shape);
    for (long k = 0; k < m->size; k++) {
        if (m->elem == CM_FLOAT) { double v; if (fread(&v, 8, 1, fp) != 1) cm_die("short read"); m->f[k] = (float)v; }
        else if (m->elem == CM_INT) { long v; if (fread(&v, 8, 1, fp) != 1) cm_die("short read"); m->i[k] = v; }
        else { unsigned char v; if (fread(&v, 1, 1, fp) != 1) cm_die("short read"); m->b[k] = v; }
    }
    fclose(fp);
    return m;
}

static void cm_write(const char *name, cm_mat *m) {
    FILE *fp = fopen(name, "wb");
    if (!fp) cm_die("writeMatrix: cannot open file");
    fwrite("CMXM", 1, 4, fp);
    long head[2] = {m->elem == CM_FLOAT ? 0 : (m->elem == CM_INT ? 1 : 2), m->rank};
    fwrite(head, 8, 2, fp);
    fwrite(m->shape, 8, m->rank, fp);
    for (long k = 0; k < m->size; k++) {
        if (m->elem == CM_FLOAT) { double v = m->f[k]; fwrite(&v, 8, 1, fp); }
        else if (m->elem == CM_INT) { fwrite(&m->i[k], 8, 1, fp); }
        else { fwrite(&m->b[k], 1, 1, fp); }
    }
    fclose(fp);
}

/* ---- enhanced fork-join pool (§III-C) ----
 * Threads are spawned once and "sent straight into a spin lock where
 * they sit idle until some parallel work is to be done"; releasing
 * them flips a generation counter, and each passes through the stop
 * barrier back into the spin lock. */
typedef void (*cm_work_fn)(void *arg, int worker, int nworkers);
/* Nested parallel constructs run sequentially inside a worker (only
 * the outermost construct is distributed, as in the paper): workers
 * mark themselves and cm_pool_run falls back to inline execution. */
static __thread int cm_in_worker = 0;
static struct {
    int n;
    volatile unsigned long gen;
    volatile long done;
    cm_work_fn fn;
    void *arg;
    volatile int stop;
    pthread_t tids[256];
} cm_pool;

static void *cm_pool_worker(void *p) {
    long id = (long)p;
    unsigned long last = 0;
    cm_in_worker = 1;
    for (;;) {
        while (__atomic_load_n(&cm_pool.gen, __ATOMIC_SEQ_CST) == last) {
            if (cm_pool.stop) return 0;
            sched_yield();          /* spin lock with polite backoff */
        }
        last = __atomic_load_n(&cm_pool.gen, __ATOMIC_SEQ_CST);
        cm_pool.fn(cm_pool.arg, (int)id, cm_pool.n);
        __atomic_add_fetch(&cm_pool.done, 1, __ATOMIC_SEQ_CST); /* stop barrier */
    }
}

static void cm_pool_init(int n) {
    if (n > 256) n = 256;
    if (n < 1) n = 1;
    cm_pool.n = n;
    for (long w = 0; w < n; w++)
        pthread_create(&cm_pool.tids[w], 0, cm_pool_worker, (void *)w);
}

static void cm_pool_run(cm_work_fn fn, void *arg) {
    if (cm_pool.n <= 0 || cm_in_worker) { fn(arg, 0, 1); return; } /* sequential fallback */
    cm_pool.fn = fn; cm_pool.arg = arg;
    __atomic_store_n(&cm_pool.done, 0, __ATOMIC_SEQ_CST);
    __atomic_add_fetch(&cm_pool.gen, 1, __ATOMIC_SEQ_CST); /* release workers */
    while (__atomic_load_n(&cm_pool.done, __ATOMIC_SEQ_CST) < cm_pool.n)
        sched_yield();              /* main thread waits in the stop barrier */
}

static void cm_pool_shutdown(void) {
    if (cm_pool.n <= 0) return;
    cm_pool.stop = 1;
    for (int w = 0; w < cm_pool.n; w++) pthread_join(cm_pool.tids[w], 0);
    cm_pool.n = 0;
}

/* ---- matrixMap (§III-A.5): apply f over mapped dims, iterate the
 * rest in parallel on the pool ---- */
typedef cm_mat *(*cm_map_fn)(cm_mat *);
typedef struct {
    cm_mat *in, *out;
    int ndims; const int *dims;
    cm_map_fn fn;
    long itersize;
} cm_mm_args;

static void cm_mm_work(void *p, int worker, int nworkers) {
    cm_mm_args *a = (cm_mm_args *)p;
    long chunk = (a->itersize + nworkers - 1) / nworkers;
    long lo = (long)worker * chunk, hi = lo + chunk;
    if (hi > a->itersize) hi = a->itersize;
    int mapped[CM_MAX_RANK] = {0};
    for (int k = 0; k < a->ndims; k++) mapped[a->dims[k]] = 1;
    for (long it = lo; it < hi; it++) {
        cm_spec specs[CM_MAX_RANK];
        long rem = it;
        for (int d = a->in->rank - 1; d >= 0; d--) {
            if (mapped[d]) { specs[d] = cm_allspec(); continue; }
            specs[d] = cm_scalar(rem % a->in->shape[d]);
            rem /= a->in->shape[d];
        }
        cm_mat *sub = cm_index(a->in, a->in->rank, specs);
        cm_mat *res = a->fn(sub);
        cm_store(a->out, a->in->rank, specs, res);
        cm_decref(sub); cm_decref(res);
    }
}

static cm_mat *cm_matrixmap(cm_mat *in, int ndims, const int *dims, int outElem, cm_map_fn fn) {
    if (!in) cm_die("matrixMap of unassigned matrix");
    cm_mat *out = cm_alloc(outElem, in->rank, in->shape);
    int mapped[CM_MAX_RANK] = {0};
    for (int k = 0; k < ndims; k++) mapped[dims[k]] = 1;
    long itersize = 1;
    for (int d = 0; d < in->rank; d++) if (!mapped[d]) itersize *= in->shape[d];
    cm_mm_args args = {in, out, ndims, dims, fn, itersize};
    cm_pool_run(cm_mm_work, &args);
    return out;
}
/* ---- end of runtime ---- */
`
