// SSE vector emission for vectorized loops (§V, Fig 11). A loop
// marked by "vectorize" executes its iterations as the four lanes of
// 128-bit single-precision vectors: scalar float declarations become
// __m128 vectors, arithmetic becomes _mm_*_ps intrinsics, stride-1
// loads and stores become _mm_loadu_ps/_mm_storeu_ps and other access
// patterns become lane-wise gathers/scatters, and inner loops (like
// Fig 11's time dimension) remain scalar loops over vector
// accumulators.
package cgen

import (
	"fmt"
	"math/rand"

	"repro/internal/loopir"
)

// vecCtx tracks which names hold vector values during emission.
type vecCtx struct {
	index   string // the vectorized loop index
	vecVars map[string]bool
}

// emitVectorLoop expands a VectorLanes=4 loop.
func emitVectorLoop(g *generator, b *indentWriter, l *loopir.Loop) error {
	trip, ok := l.Hi.(*loopir.IntConst)
	if !ok || trip.V%4 != 0 {
		return fmt.Errorf("cgen: vectorized loop %q needs a constant trip count divisible by 4", l.Index)
	}
	v := &vecCtx{index: l.Index, vecVars: map[string]bool{}}
	b.line("/* loop %s vectorized: 4 x 32-bit single-precision lanes (SSE) */", l.Index)
	emitBody := func() error { return v.stmts(b, l.Body) }
	if trip.V == 4 {
		// The whole loop collapses into straight-line vector code with
		// the index fixed at lane origin 0 (the Fig 11 presentation).
		b.line("{")
		b.indent++
		b.line("long %s = 0;", l.Index)
		if err := emitBody(); err != nil {
			return err
		}
		b.indent--
		b.line("}")
		return nil
	}
	b.line("for (long %s = 0; %s < %d; %s += 4) {", l.Index, l.Index, trip.V, l.Index)
	b.indent++
	if err := emitBody(); err != nil {
		return err
	}
	b.indent--
	b.line("}")
	return nil
}

func (v *vecCtx) stmts(b *indentWriter, body []loopir.Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *loopir.DeclStmt:
			init := "_mm_setzero_ps()"
			if s.Init != nil {
				var err error
				init, err = v.expr(s.Init)
				if err != nil {
					return err
				}
			}
			b.line("__m128 %s = %s;", s.Name, init)
			v.vecVars[s.Name] = true
		case *loopir.AssignStmt:
			rhs, err := v.expr(s.RHS)
			if err != nil {
				return err
			}
			switch lhs := s.LHS.(type) {
			case *loopir.VarRef:
				if !v.vecVars[lhs.Name] {
					return fmt.Errorf("cgen: vectorized store to scalar %q", lhs.Name)
				}
				b.line("%s = %s;", lhs.Name, rhs)
			case *loopir.Load:
				if stride1(lhs.Idx, v.index) {
					b.line("_mm_storeu_ps(&%s[%s], %s);", lhs.Array, lhs.Idx, rhs)
				} else {
					// lane-wise scatter
					tmp := fmt.Sprintf("_lanes_%s", lhs.Array)
					b.line("{ float %s[4]; _mm_storeu_ps(%s, %s);", tmp, tmp, rhs)
					for k := 0; k < 4; k++ {
						b.line("  %s[%s] = %s[%d];", lhs.Array, laneIdx(lhs.Idx, v.index, k), tmp, k)
					}
					b.line("}")
				}
			default:
				return fmt.Errorf("cgen: vectorized store to %T", s.LHS)
			}
		case *loopir.Loop:
			// Inner scalar loop over vector state (Fig 11's k loop).
			if dependsOn(s.Lo, v.index) || dependsOn(s.Hi, v.index) {
				return fmt.Errorf("cgen: inner loop %q bounds depend on the vectorized index", s.Index)
			}
			b.line("for (long %s = %s; %s < %s; %s++) {", s.Index, s.Lo, s.Index, s.Hi, s.Index)
			b.indent++
			if err := v.stmts(b, s.Body); err != nil {
				return err
			}
			b.indent--
			b.line("}")
		case *loopir.Comment:
			b.line("/* %s */", s.Text)
		default:
			return fmt.Errorf("cgen: cannot vectorize statement %T", s)
		}
	}
	return nil
}

// expr renders an IR expression as a 4-lane vector expression.
func (v *vecCtx) expr(e loopir.Expr) (string, error) {
	switch e := e.(type) {
	case *loopir.IntConst:
		return fmt.Sprintf("_mm_set1_ps(%d.0f)", e.V), nil
	case *loopir.FloatConst:
		return fmt.Sprintf("_mm_set1_ps(%s)", e.String()), nil
	case *loopir.VarRef:
		if e.Name == v.index {
			return fmt.Sprintf("_mm_add_ps(_mm_set1_ps((float)%s), _mm_setr_ps(0, 1, 2, 3))", e.Name), nil
		}
		if v.vecVars[e.Name] {
			return e.Name, nil
		}
		return fmt.Sprintf("_mm_set1_ps((float)%s)", e.Name), nil
	case *loopir.Bin:
		l, err := v.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := v.expr(e.R)
		if err != nil {
			return "", err
		}
		op := map[string]string{"+": "_mm_add_ps", "-": "_mm_sub_ps", "*": "_mm_mul_ps", "/": "_mm_div_ps"}[e.Op]
		if op == "" {
			return "", fmt.Errorf("cgen: cannot vectorize operator %q", e.Op)
		}
		return fmt.Sprintf("%s(%s, %s)", op, l, r), nil
	case *loopir.Un:
		x, err := v.expr(e.X)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case "-":
			return fmt.Sprintf("_mm_sub_ps(_mm_setzero_ps(), %s)", x), nil
		case "(float)", "(long)":
			return x, nil // all lanes are floats already
		}
		return "", fmt.Errorf("cgen: cannot vectorize unary %q", e.Op)
	case *loopir.Load:
		if stride1(e.Idx, v.index) {
			return fmt.Sprintf("_mm_loadu_ps(&%s[%s])", e.Array, e.Idx), nil
		}
		if !dependsOn(e.Idx, v.index) {
			return fmt.Sprintf("_mm_set1_ps((float)%s[%s])", e.Array, e.Idx), nil
		}
		// lane-wise gather (e.g. Fig 11's strided mat accesses)
		return fmt.Sprintf("_mm_setr_ps((float)%s[%s], (float)%s[%s], (float)%s[%s], (float)%s[%s])",
			e.Array, laneIdx(e.Idx, v.index, 0), e.Array, laneIdx(e.Idx, v.index, 1),
			e.Array, laneIdx(e.Idx, v.index, 2), e.Array, laneIdx(e.Idx, v.index, 3)), nil
	case *loopir.Cond:
		// min/max accumulators: (a < b ? a : b) and (a > b ? a : b).
		if c, ok := e.C.(*loopir.Bin); ok {
			l, lerr := v.expr(e.T)
			r, rerr := v.expr(e.F)
			if lerr == nil && rerr == nil && sameExpr(c.L, e.T) && sameExpr(c.R, e.F) {
				switch c.Op {
				case "<":
					return fmt.Sprintf("_mm_min_ps(%s, %s)", l, r), nil
				case ">":
					return fmt.Sprintf("_mm_max_ps(%s, %s)", l, r), nil
				}
			}
		}
		return "", fmt.Errorf("cgen: cannot vectorize conditional expression")
	case *loopir.CallE:
		if !dependsOn(e, v.index) {
			return fmt.Sprintf("_mm_set1_ps((float)%s)", e.String()), nil
		}
		// lane-wise gather through the call (e.g. the bounds-checked
		// cm_at accessors of the unoptimized ablation path)
		return fmt.Sprintf("_mm_setr_ps((float)%s, (float)%s, (float)%s, (float)%s)",
			laneExpr(e, v.index, 0), laneExpr(e, v.index, 1),
			laneExpr(e, v.index, 2), laneExpr(e, v.index, 3)), nil
	}
	return "", fmt.Errorf("cgen: cannot vectorize expression %T", e)
}

// laneIdx renders the index expression at lane k.
func laneIdx(idx loopir.Expr, index string, k int) string {
	return loopir.SubstExpr(idx, index, loopir.B("+", loopir.V(index), loopir.IC(int64(k)))).String()
}

// laneExpr renders any expression at lane k of the vectorized index.
func laneExpr(e loopir.Expr, index string, k int) string {
	return loopir.SubstExpr(e, index, loopir.B("+", loopir.V(index), loopir.IC(int64(k)))).String()
}

func sameExpr(a, b loopir.Expr) bool { return a.String() == b.String() }

// dependsOn reports whether e references the given variable.
func dependsOn(e loopir.Expr, name string) bool {
	switch e := e.(type) {
	case *loopir.VarRef:
		return e.Name == name
	case *loopir.Bin:
		return dependsOn(e.L, name) || dependsOn(e.R, name)
	case *loopir.Un:
		return dependsOn(e.X, name)
	case *loopir.Load:
		return dependsOn(e.Idx, name)
	case *loopir.CallE:
		for _, a := range e.Args {
			if dependsOn(a, name) {
				return true
			}
		}
	case *loopir.Cond:
		return dependsOn(e.C, name) || dependsOn(e.T, name) || dependsOn(e.F, name)
	}
	return false
}

// stride1 reports whether idx advances by exactly 1 when the given
// index variable advances by 1, tested numerically under random
// assignments of the other variables (a standard dependence-test
// shortcut; false negatives only cost a gather).
func stride1(idx loopir.Expr, index string) bool {
	if !dependsOn(idx, index) {
		return false
	}
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 4; trial++ {
		env := loopir.NewEnv()
		assignVarsRandom(idx, env, r)
		env.Vars[index] = loopir.IV(int64(trial * 3))
		v0, err0 := env.EvalExpr(idx)
		env.Vars[index] = loopir.IV(int64(trial*3 + 1))
		v1, err1 := env.EvalExpr(idx)
		if err0 != nil || err1 != nil || !v0.IsInt || !v1.IsInt || v1.I-v0.I != 1 {
			return false
		}
	}
	return true
}

func assignVarsRandom(e loopir.Expr, env *loopir.Env, r *rand.Rand) {
	switch e := e.(type) {
	case *loopir.VarRef:
		if _, ok := env.Vars[e.Name]; !ok {
			env.Vars[e.Name] = loopir.IV(int64(1 + r.Intn(50)))
		}
	case *loopir.Bin:
		assignVarsRandom(e.L, env, r)
		assignVarsRandom(e.R, env, r)
	case *loopir.Un:
		assignVarsRandom(e.X, env, r)
	case *loopir.Load:
		assignVarsRandom(e.Idx, env, r)
	case *loopir.CallE:
		for _, a := range e.Args {
			assignVarsRandom(a, env, r)
		}
	}
}
