package cgen

import (
	"bytes"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/matio"
	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func gen(t *testing.T, src string, opts Options) string {
	t.Helper()
	var d source.Diagnostics
	prog := parser.ParseFile("t.xc", src, parser.AllExtensions(), &d)
	if prog == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	info := sem.Check(prog, &d)
	if d.HasErrors() {
		t.Fatalf("check failed:\n%s", d.String())
	}
	c, err := Generate(prog, info, opts)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return c
}

func haveGCC() bool {
	_, err := exec.LookPath("gcc")
	return err == nil
}

// compileC compiles generated C, failing the test on any diagnostic.
func compileC(t *testing.T, csrc, dir string) string {
	t.Helper()
	cfile := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(cfile, []byte(csrc), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "prog")
	cmd := exec.Command("gcc", "-O1", "-Wall", "-Wno-unused-variable",
		"-Wno-unused-but-set-variable", "-Wno-unused-function",
		"-o", bin, cfile, "-lpthread", "-lm")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("gcc failed: %v\n%s\n--- generated C ---\n%s", err, out, numberLines(csrc))
	}
	if len(bytes.TrimSpace(out)) > 0 {
		t.Logf("gcc warnings:\n%s", out)
	}
	return bin
}

func numberLines(s string) string {
	lines := strings.Split(s, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(strings.TrimRight(strings.Repeat(" ", 0)+itoa(i+1)+": "+l, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

const fig1Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`

// E1: Fig 1 expands to the Fig 3 loop nest — two nested for loops,
// an inner accumulation loop replacing the fold, direct strided
// element access (slice elimination), and no temporary copy.
func TestE1Fig1ExpandsToFig3Shape(t *testing.T) {
	c := gen(t, fig1Src, Options{Par: ParNone, Optimize: true})
	for _, want := range []string{
		"for (long u_i = ", // outer genarray loop over i
		"for (long u_j = ", // loop over j
		"for (long u_k = ", // the fold became an accumulation loop
		"u_mat_d_w1[",      // direct data access: no copied slice of mat
		"u_mat_s0_w1",      // hoisted strides (slice elimination)
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	if strings.Contains(c, "cm_copy(_wl") {
		t.Error("optimized output should not copy the with-loop result (fusion, §III-A.4)")
	}
	// The inner accumulator divides by p and stores into means.
	if !strings.Contains(c, "_acc") {
		t.Error("generated C missing the fold accumulator")
	}
	// No 'end' in the body, so no dimension variables are hoisted.
	if strings.Contains(c, "u_mat_dim0") {
		t.Error("dimension variables should only be hoisted when 'end' is used")
	}
}

func TestE1AblationUsesCheckedAccessors(t *testing.T) {
	c := gen(t, fig1Src, Options{Par: ParNone, Optimize: false})
	if !strings.Contains(c, "cm_at3(") {
		t.Error("unoptimized output should access elements via cm_at3")
	}
	if !strings.Contains(c, "cm_copy(_wl") {
		t.Error("unoptimized output should copy the with-loop result (no fusion)")
	}
	if strings.Contains(c, "u_mat_s0") {
		t.Error("unoptimized output should not hoist strides")
	}
}

const fig9Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p)
		transform
			split j by 4, jin, jout.
			vectorize jin.
			parallelize i;
	writeMatrix("means.data", means);
	return 0;
}
`

// E2: the split transformation produces the Fig 10 structure.
func TestE2SplitProducesFig10(t *testing.T) {
	src := strings.Replace(fig9Src,
		"split j by 4, jin, jout.\n\t\t\tvectorize jin.\n\t\t\tparallelize i;",
		"split j by 4, jin, jout;", 1)
	c := gen(t, src, Options{Par: ParNone, Optimize: true})
	for _, want := range []string{
		"for (long u_jout = ",
		"for (long u_jin = 0; u_jin < 4;",
		"((u_jout * 4) + u_jin)", // j replaced by jout*4 + jin
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q\n", want)
		}
	}
	if strings.Contains(c, "for (long u_j = ") {
		t.Error("original j loop should be replaced by the split pair")
	}
}

// E3: vectorize + parallelize produce the Fig 11 shape — SSE
// intrinsics with the scalar k loop over vector accumulators, and an
// OpenMP parallel-for on the outer loop in omp mode.
func TestE3VectorizeProducesFig11(t *testing.T) {
	c := gen(t, fig9Src, Options{Par: ParOMP, Optimize: true})
	for _, want := range []string{
		"#include <xmmintrin.h>",
		"#pragma omp parallel for",
		"_mm_set1_ps",
		"_mm_add_ps",
		"_mm_setr_ps", // strided gathers of mat elements, as in Fig 11
		"_mm_storeu_ps",
		"__m128",
		"for (long u_k = ", // the time loop stays scalar over vectors
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
}

// The pthread mode lifts the auto-parallelized outer loop into a
// worker function dispatched on the fork-join pool.
func TestPthreadLifting(t *testing.T) {
	c := gen(t, fig1Src, Options{Par: ParPthread, Optimize: true})
	for _, want := range []string{
		"_wlargs1",
		"_wlwork1",
		"cm_pool_run(_wlwork1",
		"stop barrier",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
}

// All option combinations must produce C that gcc accepts.
func TestGeneratedCCompiles(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	srcs := map[string]string{
		"fig1": fig1Src,
		"fig9": fig9Src,
		"fig8": fig8Src,
		"misc": miscSrc,
	}
	for name, src := range srcs {
		for _, opt := range []Options{
			{Par: ParNone, Optimize: true},
			{Par: ParNone, Optimize: false},
			{Par: ParPthread, Optimize: true},
			{Par: ParOMP, Optimize: true},
		} {
			t.Run(name+"/"+string(opt.Par), func(t *testing.T) {
				c := gen(t, src, opt)
				compileC(t, c, t.TempDir())
			})
		}
	}
}

const fig8Src = `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> aoi) {
	float y1 = aoi[0];
	float y2 = aoi[end];
	int x1 = 0;
	int x2 = dimSize(aoi, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - aoi[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	while (ts[i] < ts[i + 1])
		i = i + 1;
	int n = dimSize(ts, 0);
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}

int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

const miscSrc = `
int g = 7;
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	refcounted int * p = rcnew(1);
	rcset(p, rcget(p) + fib(10));
	Matrix int <1> v = [0 :: 9];
	Matrix int <1> odds = v[v % 2 == 1];
	Matrix float <2> a = init(Matrix float <2>, 4, 4);
	a[1, 2] = 3.5;
	Matrix float <2> b = a * a + a .* a - a / 2.0;
	Matrix bool <2> c = (b > 0.0) && !(b == 1.0);
	print(g);
	print(rcget(p));
	print(dimSize(odds, 0));
	print(b[1, 2]);
	for (int i = 0; i < 3; i++) {
		if (i == 1) { continue; }
		print(i);
	}
	return 0;
}
`

// Compile AND execute the Fig 1 program; its output file must match
// the interpreter's result (within float32 precision, since the
// generated C uses the paper's 32-bit floats).
func TestE1CompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const m, n, p = 6, 8, 10
	ssh := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(11))
	for k := range ssh.Floats() {
		ssh.Floats()[k] = r.Float64() * 5
	}
	// Interpreter run.
	files := map[string]*matrix.Matrix{"ssh.data": ssh}
	runInterp(t, fig1Src, files, 1)
	want := files["means.data"]

	for _, opt := range []Options{
		{Par: ParNone, Optimize: true},
		{Par: ParNone, Optimize: false},
		{Par: ParPthread, Optimize: true},
	} {
		dir := t.TempDir()
		if err := matio.WriteFile(filepath.Join(dir, "ssh.data"), ssh); err != nil {
			t.Fatal(err)
		}
		c := gen(t, fig1Src, opt)
		bin := compileC(t, c, dir)
		args := []string{}
		if opt.Par == ParPthread {
			args = []string{"-t", "3"}
		}
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("compiled program failed (%+v): %v\n%s", opt, err, out)
		}
		got, err := matio.ReadFile(filepath.Join(dir, "means.data"))
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.AlmostEqual(got, want, 1e-3) {
			t.Fatalf("compiled C result differs from interpreter (options %+v)", opt)
		}
	}
}

// Compile and run the misc program; stdout must match the interpreter.
func TestMiscCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	files := map[string]*matrix.Matrix{}
	wantOut := runInterp(t, miscSrc, files, 1)

	dir := t.TempDir()
	c := gen(t, miscSrc, Options{Par: ParNone, Optimize: true})
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("compiled program failed: %v\n%s", err, out)
	}
	if string(out) != wantOut {
		t.Fatalf("stdout differs:\ncompiled: %q\ninterp:   %q", out, wantOut)
	}
}

// Fig 8 compiled end to end: the trough-scoring pipeline through
// matrixMap must match the interpreter.
func TestFig8CompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const x, y, ts = 3, 3, 12
	data := matrix.New(matrix.Float, x, y, ts)
	r := rand.New(rand.NewSource(5))
	for k := range data.Floats() {
		// gentle wave + noise so troughs exist
		data.Floats()[k] = 2 + float64(k%5) + r.Float64()
	}
	files := map[string]*matrix.Matrix{"ssh.data": data}
	runInterp(t, fig8Src, files, 1)
	want := files["temporalScores.data"]

	dir := t.TempDir()
	if err := matio.WriteFile(filepath.Join(dir, "ssh.data"), data); err != nil {
		t.Fatal(err)
	}
	c := gen(t, fig8Src, Options{Par: ParPthread, Optimize: true})
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin, "-t", "2")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compiled program failed: %v\n%s", err, out)
	}
	got, err := matio.ReadFile(filepath.Join(dir, "temporalScores.data"))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.AlmostEqual(got, want, 1e-3) {
		t.Fatal("compiled Fig 8 scores differ from the interpreter")
	}
}

// Vectorized output must also compile and produce the same numbers.
func TestE3VectorizedCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	const m, n, p = 4, 8, 6
	ssh := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(23))
	for k := range ssh.Floats() {
		ssh.Floats()[k] = r.Float64()
	}
	files := map[string]*matrix.Matrix{"ssh.data": ssh}
	runInterp(t, fig9Src, files, 1)
	want := files["means.data"]

	dir := t.TempDir()
	if err := matio.WriteFile(filepath.Join(dir, "ssh.data"), ssh); err != nil {
		t.Fatal(err)
	}
	c := gen(t, fig9Src, Options{Par: ParOMP, Optimize: true})
	bin := compileC(t, c, dir)
	cmd := exec.Command(bin)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vectorized program failed: %v\n%s", err, out)
	}
	got, err := matio.ReadFile(filepath.Join(dir, "means.data"))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.AlmostEqual(got, want, 1e-3) {
		t.Fatal("vectorized C result differs from interpreter")
	}
}

// runInterp executes src in the interpreter, returning stdout.
func runInterp(t *testing.T, src string, files map[string]*matrix.Matrix, threads int) string {
	t.Helper()
	var d source.Diagnostics
	prog := parser.ParseFile("t.xc", src, parser.AllExtensions(), &d)
	if prog == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	info := sem.Check(prog, &d)
	if d.HasErrors() {
		t.Fatalf("check failed:\n%s", d.String())
	}
	var out bytes.Buffer
	i := interp.New(prog, info, interp.Options{Files: files, Threads: threads,
		Stdout: &out, MaxSteps: 10_000_000})
	defer i.Close()
	if _, err := i.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return out.String()
}

var _ = ast.Print

// transposeSrc: whole-shape m[j, i] genarray bodies (the fast-path
// pattern), a corner transpose of a larger source (fast path with a
// short leading dimension), and a shifted body that must stay on the
// general nest.
const transposeSrc = `
int main() {
	int r = 13;
	int c = 7;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [r, c]) genarray([r, c], (float)(i * 10 + j));
	Matrix float <2> t;
	t = with ([0, 0] <= [i, j] < [c, r]) genarray([c, r], m[j, i]);
	Matrix float <2> back;
	back = with ([0, 0] <= [i, j] < [r, c]) genarray([r, c], t[j, i]);
	float diff = with ([0, 0] <= [i, j] < [r, c]) fold(+, 0.0, back[i, j] - m[i, j]);
	print(diff);
	print(t[6, 12]);
	Matrix float <2> corner;
	corner = with ([0, 0] <= [i, j] < [5, 5]) genarray([5, 5], m[j, i]);
	print(corner[4, 2]);
	Matrix int <2> a;
	a = with ([0, 0] <= [i, j] < [c, r]) genarray([c, r], i * 100 + j);
	Matrix int <2> at;
	at = with ([0, 0] <= [i, j] < [r, c]) genarray([r, c], a[j, i]);
	print(at[12, 6]);
	Matrix float <2> sh;
	sh = with ([0, 0] <= [i, j] < [5, 5]) genarray([5, 5], m[j + 1, i]);
	print(sh[0, 0]);
	return 0;
}
`

// The optimized build must route exactly the four whole-shape
// transpose bodies to the cm_transpose kernel; the shifted body and
// every loop in the ablation baseline stay on the general nest.
func TestTransposeFastPathEmission(t *testing.T) {
	opt := gen(t, transposeSrc, Options{Par: ParNone, Optimize: true})
	if n := strings.Count(opt, "cm_transpose(_wl"); n != 4 {
		t.Fatalf("optimized build emitted %d cm_transpose calls, want 4\n%s", n, numberLines(opt))
	}
	base := gen(t, transposeSrc, Options{Par: ParNone, Optimize: false})
	if n := strings.Count(base, "cm_transpose(_wl"); n != 0 {
		t.Fatalf("ablation baseline emitted %d cm_transpose calls, want 0", n)
	}
}

// Compile and run the transpose program; stdout must match the
// interpreter on every option combination, fast path or not.
func TestTransposeCompiledMatchesInterpreter(t *testing.T) {
	if !haveGCC() {
		t.Skip("gcc not available")
	}
	files := map[string]*matrix.Matrix{}
	wantOut := runInterp(t, transposeSrc, files, 1)
	for _, opt := range []Options{
		{Par: ParNone, Optimize: true},
		{Par: ParNone, Optimize: false},
		{Par: ParPthread, Optimize: true},
	} {
		dir := t.TempDir()
		c := gen(t, transposeSrc, opt)
		bin := compileC(t, c, dir)
		args := []string{}
		if opt.Par == ParPthread {
			args = []string{"-t", "3"}
		}
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("compiled program failed (%+v): %v\n%s", opt, err, out)
		}
		if string(out) != wantOut {
			t.Fatalf("stdout differs (%+v):\ncompiled: %q\ninterp:   %q", opt, out, wantOut)
		}
	}
}
