// Statement translation with reference-count insertion (§III-B):
// owned temporaries are released at the end of each statement,
// variable assignment retains the new value and releases the old, and
// scope exits release block locals.
package cgen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/types"
)

func (f *fnEmitter) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		f.b.line("{")
		f.b.indent++
		f.pushScope()
		for _, st := range s.Stmts {
			if err := f.stmt(st); err != nil {
				return err
			}
		}
		f.popScope(true)
		f.b.indent--
		f.b.line("}")
		return nil

	case *ast.DeclStmt:
		ty := types.MustFrom(s.Type)
		f.vars[s.Name] = ty
		cn := cname(s.Name)
		if s.Init == nil {
			switch ty.Kind {
			case types.Matrix, types.AnyMatrix:
				f.b.line("cm_mat *%s = 0;", cn)
			case types.RcPtr:
				f.b.line("cm_cell *%s = 0;", cn)
			case types.Tuple:
				f.b.line("%s %s = {0};", f.g.tupleType(ty), cn)
			default:
				f.b.line("%s%s = 0;", padType(f.g.cType(ty)), cn)
			}
			f.trackVar(cn, ty)
			return nil
		}
		val, err := f.expr(s.Init)
		if err != nil {
			return err
		}
		val = promoteScalar(val, f.g.info.TypeOf(s.Init), ty)
		f.b.line("%s%s = %s;", padType(f.g.cType(ty)), cn, val)
		f.retain(cn, ty)
		f.trackVar(cn, ty)
		f.releaseTemps()
		return nil

	case *ast.AssignStmt:
		return f.assignStmt(s)

	case *ast.IfStmt:
		cond, err := f.materializeCond(s.Cond)
		if err != nil {
			return err
		}
		f.b.line("if (%s) {", cond)
		f.b.indent++
		f.pushScope()
		if err := f.stmt(s.Then); err != nil {
			return err
		}
		f.popScope(true)
		f.b.indent--
		if s.Else != nil {
			f.b.line("} else {")
			f.b.indent++
			f.pushScope()
			if err := f.stmt(s.Else); err != nil {
				return err
			}
			f.popScope(true)
			f.b.indent--
		}
		f.b.line("}")
		return nil

	case *ast.WhileStmt:
		// Conditions may allocate temporaries (matrix compares reduce
		// to scalars only via user code, but calls can allocate), so
		// evaluate the condition inside the loop with a break-out.
		f.b.line("for (;;) {")
		f.b.indent++
		cond, err := f.materializeCond(s.Cond)
		if err != nil {
			return err
		}
		f.b.line("if (!%s) break;", cond)
		f.contLabels = append(f.contLabels, "")
		f.pushScope()
		if err := f.stmt(s.Body); err != nil {
			return err
		}
		f.popScope(true)
		f.contLabels = f.contLabels[:len(f.contLabels)-1]
		f.b.indent--
		f.b.line("}")
		return nil

	case *ast.ForStmt:
		f.b.line("{")
		f.b.indent++
		f.pushScope()
		if s.Init != nil {
			if err := f.stmt(s.Init); err != nil {
				return err
			}
		}
		f.b.line("for (;;) {")
		f.b.indent++
		if s.Cond != nil {
			cond, err := f.materializeCond(s.Cond)
			if err != nil {
				return err
			}
			f.b.line("if (!%s) break;", cond)
		}
		// 'continue' must still run the post statement; route it
		// through a label placed before the post.
		label := f.g.fresh("cont")
		f.contLabels = append(f.contLabels, label)
		f.pushScope()
		if err := f.stmt(s.Body); err != nil {
			return err
		}
		f.popScope(true)
		f.contLabels = f.contLabels[:len(f.contLabels)-1]
		f.b.line("%s:;", label)
		if s.Post != nil {
			if err := f.stmt(s.Post); err != nil {
				return err
			}
		}
		f.b.indent--
		f.b.line("}")
		f.popScope(true)
		f.b.indent--
		f.b.line("}")
		return nil

	case *ast.ReturnStmt:
		if s.Value == nil {
			if f.cilk {
				f.b.line("cm_sync_from(_cilk_mark); /* implicit sync at function exit */")
			}
			f.releaseAllScopes()
			f.b.line("return;")
			return nil
		}
		val, err := f.expr(s.Value)
		if err != nil {
			return err
		}
		sig := f.g.info.Funcs[f.fn.Name]
		retTy := sig.Type.Ret
		val = promoteScalar(val, f.g.info.TypeOf(s.Value), retTy)
		ret := f.g.fresh("ret")
		f.b.line("%s%s = %s;", padType(f.g.cType(retTy)), ret, val)
		// Secure the result before temp and scope releases: returned
		// values carry one owned reference out of the function.
		f.retain(ret, retTy)
		f.releaseTemps()
		if f.cilk {
			f.b.line("cm_sync_from(_cilk_mark); /* implicit sync at function exit */")
		}
		f.releaseAllScopes()
		f.b.line("return %s;", ret)
		return nil

	case *ast.ExprStmt:
		val, err := f.expr(s.X)
		if err != nil {
			return err
		}
		if val != "" {
			f.b.line("(void)(%s);", val)
		}
		f.releaseTemps()
		return nil

	case *ast.BreakStmt:
		// NOTE: block locals between here and the loop are not
		// released on this edge (a known simplification, documented in
		// DESIGN.md); results are unaffected.
		f.b.line("break;")
		return nil
	case *ast.ContinueStmt:
		if n := len(f.contLabels); n > 0 && f.contLabels[n-1] != "" {
			f.b.line("goto %s;", f.contLabels[n-1])
		} else {
			f.b.line("continue;")
		}
		return nil

	case *ast.SpawnStmt:
		f.g.usesCilk = true
		return f.emitSpawn(s)
	case *ast.SyncStmt:
		f.b.line("cm_sync_from(_cilk_mark);")
		return nil
	}
	return fmt.Errorf("cgen: unknown statement %T", s)
}

// materializeCond evaluates a (scalar bool) condition into a fresh C
// variable and releases the expression's temporaries, so the condition
// value never references memory freed by RC insertion.
func (f *fnEmitter) materializeCond(e ast.Expr) (string, error) {
	cond, err := f.expr(e)
	if err != nil {
		return "", err
	}
	cn := f.g.fresh("c")
	f.b.line("int %s = (%s);", cn, cond)
	f.releaseTemps()
	return cn, nil
}

func (f *fnEmitter) assignStmt(s *ast.AssignStmt) error {
	rhs, err := f.expr(s.RHS)
	if err != nil {
		return err
	}
	rhsTy := f.g.info.TypeOf(s.RHS)
	if len(s.LHS) == 1 {
		if err := f.assignLValue(s.LHS[0], rhs, rhsTy); err != nil {
			return err
		}
		f.releaseTemps()
		return nil
	}
	// Tuple destructuring: bind the struct once, then assign members.
	tmp := f.g.fresh("d")
	f.b.line("%s %s = %s;", f.g.tupleType(rhsTy), tmp, rhs)
	for k, l := range s.LHS {
		if err := f.assignLValue(l, fmt.Sprintf("%s._%d", tmp, k), rhsTy.Elems[k]); err != nil {
			return err
		}
	}
	f.releaseTemps()
	return nil
}

func (f *fnEmitter) assignLValue(lhs ast.Expr, val string, valTy *types.Type) error {
	switch l := lhs.(type) {
	case *ast.Ident:
		ty, ok := f.vars[l.Name]
		if !ok {
			ty = f.g.info.TypeOf(l)
		}
		f.assignVar(cname(l.Name), ty, val, valTy)
		return nil
	case *ast.IndexExpr:
		base, err := f.expr(l.X)
		if err != nil {
			return err
		}
		specs, err := f.indexSpecArray(l, base)
		if err != nil {
			return err
		}
		if valTy.IsMatrix() {
			f.b.line("cm_store(%s, %d, %s, %s);", base, len(l.Args), specs, val)
		} else {
			f.b.line("cm_store_scalar(%s, %d, %s, (double)(%s));", base, len(l.Args), specs, val)
		}
		return nil
	}
	return fmt.Errorf("cgen: cannot assign to %s", ast.ExprString(lhs))
}
