// Package types defines the semantic type representations of extended
// CMINUS — primitives, the matrix extension's Matrix T <r> types,
// tuples, reference-counted pointers and function signatures — and the
// operator-overloading rules of §III-A.2: elementwise arithmetic and
// comparison over matrices, matrix–scalar broadcasting, '*' as linear
// algebra matrix multiplication with '.*' elementwise, and overloaded
// assignment.
package types

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Kind discriminates Type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Int
	Float
	Bool
	Void
	String
	Matrix
	Tuple
	Func
	RcPtr
	// AnyMatrix is the type of readMatrix(...) results: a matrix whose
	// element type and rank are known only at run time, assignable to
	// any concrete matrix type (checked when the file is read).
	AnyMatrix
)

// Type is a semantic type. Types are immutable after construction.
type Type struct {
	Kind   Kind
	Elem   *Type   // Matrix element (always a scalar type), RcPtr target
	Rank   int     // Matrix
	Elems  []*Type // Tuple
	Params []*Type // Func
	Ret    *Type   // Func
}

// Shared scalar singletons.
var (
	IntT     = &Type{Kind: Int}
	FloatT   = &Type{Kind: Float}
	BoolT    = &Type{Kind: Bool}
	VoidT    = &Type{Kind: Void}
	StringT  = &Type{Kind: String}
	InvalidT = &Type{Kind: Invalid}
	AnyMatT  = &Type{Kind: AnyMatrix}
)

// MatrixOf builds a matrix type.
func MatrixOf(elem *Type, rank int) *Type { return &Type{Kind: Matrix, Elem: elem, Rank: rank} }

// TupleOf builds a tuple type.
func TupleOf(elems ...*Type) *Type { return &Type{Kind: Tuple, Elems: elems} }

// RcPtrOf builds a reference-counted pointer type.
func RcPtrOf(elem *Type) *Type { return &Type{Kind: RcPtr, Elem: elem} }

// FuncOf builds a function signature type.
func FuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params}
}

// String renders the type in source syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Void:
		return "void"
	case String:
		return "string"
	case Matrix:
		return fmt.Sprintf("Matrix %s <%d>", t.Elem, t.Rank)
	case AnyMatrix:
		return "Matrix ? <?>"
	case Tuple:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case RcPtr:
		return "refcounted " + t.Elem.String() + " *"
	case Func:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(parts, ", "))
	}
	return "<invalid>"
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Rank != b.Rank {
		return false
	}
	if (a.Elem == nil) != (b.Elem == nil) || (a.Elem != nil && !Equal(a.Elem, b.Elem)) {
		return false
	}
	if len(a.Elems) != len(b.Elems) {
		return false
	}
	for i := range a.Elems {
		if !Equal(a.Elems[i], b.Elems[i]) {
			return false
		}
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if !Equal(a.Params[i], b.Params[i]) {
			return false
		}
	}
	if (a.Ret == nil) != (b.Ret == nil) || (a.Ret != nil && !Equal(a.Ret, b.Ret)) {
		return false
	}
	return true
}

// IsNumeric reports whether t is int or float.
func (t *Type) IsNumeric() bool { return t.Kind == Int || t.Kind == Float }

// IsScalar reports whether t is a scalar value type.
func (t *Type) IsScalar() bool {
	return t.Kind == Int || t.Kind == Float || t.Kind == Bool
}

// IsMatrix reports whether t is a (concrete or any) matrix.
func (t *Type) IsMatrix() bool { return t.Kind == Matrix || t.Kind == AnyMatrix }

// FromAST resolves a syntactic type. Unresolvable parts yield InvalidT
// plus an error message (the caller attaches the span).
func FromAST(te ast.TypeExpr) (*Type, error) {
	switch te := te.(type) {
	case *ast.PrimType:
		switch te.Kind {
		case ast.PrimInt:
			return IntT, nil
		case ast.PrimFloat:
			return FloatT, nil
		case ast.PrimBool:
			return BoolT, nil
		case ast.PrimVoid:
			return VoidT, nil
		}
		return InvalidT, fmt.Errorf("unsupported primitive %v", te.Kind)
	case *ast.MatrixType:
		var elem *Type
		switch te.Elem {
		case ast.PrimInt:
			elem = IntT
		case ast.PrimFloat:
			elem = FloatT
		case ast.PrimBool:
			elem = BoolT
		default:
			return InvalidT, fmt.Errorf("matrices may contain int, bool or float, not %v", te.Elem)
		}
		if te.Rank < 1 {
			return InvalidT, fmt.Errorf("matrix rank must be at least 1, got %d", te.Rank)
		}
		return MatrixOf(elem, te.Rank), nil
	case *ast.TupleType:
		elems := make([]*Type, len(te.Elems))
		for i, e := range te.Elems {
			t, err := FromAST(e)
			if err != nil {
				return InvalidT, err
			}
			elems[i] = t
		}
		return TupleOf(elems...), nil
	case *ast.RcPtrType:
		t, err := FromAST(te.Elem)
		if err != nil {
			return InvalidT, err
		}
		return RcPtrOf(t), nil
	case nil:
		return InvalidT, fmt.Errorf("missing type")
	}
	return InvalidT, fmt.Errorf("unknown type expression %T", te)
}

// MustFrom is FromAST returning InvalidT on error, for contexts where
// semantic analysis has already validated the type expression.
func MustFrom(te ast.TypeExpr) *Type {
	t, err := FromAST(te)
	if err != nil {
		return InvalidT
	}
	return t
}

// AssignableTo reports whether a value of type src may be assigned to
// a target of type dst, applying int→float promotion and the
// AnyMatrix rule.
func AssignableTo(src, dst *Type) bool {
	if src.Kind == Invalid || dst.Kind == Invalid {
		return true // avoid error cascades
	}
	if Equal(src, dst) {
		return true
	}
	if src.Kind == Int && dst.Kind == Float {
		return true
	}
	if src.Kind == AnyMatrix && dst.IsMatrix() {
		return true
	}
	if dst.Kind == AnyMatrix && src.IsMatrix() {
		return true
	}
	if src.Kind == Tuple && dst.Kind == Tuple && len(src.Elems) == len(dst.Elems) {
		for i := range src.Elems {
			if !AssignableTo(src.Elems[i], dst.Elems[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// promote returns the wider of two numeric scalar types.
func promote(a, b *Type) *Type {
	if a.Kind == Float || b.Kind == Float {
		return FloatT
	}
	return IntT
}

// BinaryResult resolves the overloaded operator op applied to operand
// types l and r (§III-A.2), returning the result type or an error
// describing the misuse.
func BinaryResult(op ast.BinOp, l, r *Type) (*Type, error) {
	if l.Kind == Invalid || r.Kind == Invalid {
		return InvalidT, nil // error already reported upstream
	}
	// AnyMatrix operands are too weakly typed for static overload
	// resolution; require a declared-type variable first.
	if l.Kind == AnyMatrix || r.Kind == AnyMatrix {
		return InvalidT, fmt.Errorf("operand of %s has unresolved matrix type; assign it to a declared Matrix variable first", op)
	}
	switch op {
	case ast.OpAnd, ast.OpOr:
		if l.Kind == Bool && r.Kind == Bool {
			return BoolT, nil
		}
		if lm, rm := l.Kind == Matrix && l.Elem.Kind == Bool, r.Kind == Matrix && r.Elem.Kind == Bool; lm || rm {
			return elementwiseLogical(op, l, r)
		}
		return InvalidT, fmt.Errorf("operator %s requires bool operands, got %s and %s", op, l, r)

	case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		return compareResult(op, l, r)

	case ast.OpMod:
		return intOpResult(op, l, r)

	case ast.OpMul:
		// '*' on two matrices is linear-algebra multiplication.
		if l.Kind == Matrix && r.Kind == Matrix {
			if !l.Elem.IsNumeric() || !r.Elem.IsNumeric() {
				return InvalidT, fmt.Errorf("matrix multiplication requires numeric matrices, got %s and %s", l, r)
			}
			if l.Rank != 2 || r.Rank != 2 {
				return InvalidT, fmt.Errorf("matrix multiplication requires rank-2 matrices, got ranks %d and %d", l.Rank, r.Rank)
			}
			return MatrixOf(promote(l.Elem, r.Elem), 2), nil
		}
		return arithResult(op, l, r)

	case ast.OpElemMul:
		// '.*' is always elementwise.
		return arithResult(op, l, r)

	case ast.OpAdd, ast.OpSub, ast.OpDiv:
		return arithResult(op, l, r)
	}
	return InvalidT, fmt.Errorf("unknown operator %s", op)
}

func elementwiseLogical(op ast.BinOp, l, r *Type) (*Type, error) {
	lift := func(t *Type) (*Type, int, bool) {
		if t.Kind == Matrix {
			return t.Elem, t.Rank, true
		}
		return t, 0, false
	}
	le, lr, lm := lift(l)
	re, rr, rm := lift(r)
	if le.Kind != Bool || re.Kind != Bool {
		return InvalidT, fmt.Errorf("operator %s requires bool elements, got %s and %s", op, l, r)
	}
	if lm && rm && lr != rr {
		return InvalidT, fmt.Errorf("operator %s requires equal ranks, got %d and %d", op, lr, rr)
	}
	rank := lr
	if rr > rank {
		rank = rr
	}
	return MatrixOf(BoolT, rank), nil
}

func intOpResult(op ast.BinOp, l, r *Type) (*Type, error) {
	lift := func(t *Type) (*Type, int, bool) {
		if t.Kind == Matrix {
			return t.Elem, t.Rank, true
		}
		return t, 0, false
	}
	le, lr, lm := lift(l)
	re, rr, rm := lift(r)
	if le.Kind != Int || re.Kind != Int {
		return InvalidT, fmt.Errorf("operator %s requires int operands, got %s and %s", op, l, r)
	}
	if lm && rm && lr != rr {
		return InvalidT, fmt.Errorf("operator %s requires equal ranks, got %d and %d", op, lr, rr)
	}
	if lm || rm {
		rank := lr
		if rr > rank {
			rank = rr
		}
		return MatrixOf(IntT, rank), nil
	}
	return IntT, nil
}

// arithResult handles elementwise +,-,/,.* and scalar arithmetic with
// matrix/scalar broadcasting.
func arithResult(op ast.BinOp, l, r *Type) (*Type, error) {
	switch {
	case l.Kind == Matrix && r.Kind == Matrix:
		if l.Rank != r.Rank {
			return InvalidT, fmt.Errorf("operator %s requires matrices of equal rank, got %d and %d", op, l.Rank, r.Rank)
		}
		if !l.Elem.IsNumeric() || !r.Elem.IsNumeric() {
			return InvalidT, fmt.Errorf("operator %s requires numeric matrices, got %s and %s", op, l, r)
		}
		return MatrixOf(promote(l.Elem, r.Elem), l.Rank), nil
	case l.Kind == Matrix && r.IsNumeric():
		if !l.Elem.IsNumeric() {
			return InvalidT, fmt.Errorf("operator %s requires a numeric matrix, got %s", op, l)
		}
		return MatrixOf(promote(l.Elem, r), l.Rank), nil
	case l.IsNumeric() && r.Kind == Matrix:
		if !r.Elem.IsNumeric() {
			return InvalidT, fmt.Errorf("operator %s requires a numeric matrix, got %s", op, r)
		}
		return MatrixOf(promote(l, r.Elem), r.Rank), nil
	case l.IsNumeric() && r.IsNumeric():
		return promote(l, r), nil
	}
	return InvalidT, fmt.Errorf("operator %s cannot be applied to %s and %s", op, l, r)
}

func compareResult(op ast.BinOp, l, r *Type) (*Type, error) {
	eqOnly := op == ast.OpEq || op == ast.OpNe
	scalarOK := func(a, b *Type) bool {
		if a.IsNumeric() && b.IsNumeric() {
			return true
		}
		return eqOnly && a.Kind == Bool && b.Kind == Bool
	}
	switch {
	case l.Kind == Matrix && r.Kind == Matrix:
		if l.Rank != r.Rank {
			return InvalidT, fmt.Errorf("comparison %s requires equal ranks, got %d and %d", op, l.Rank, r.Rank)
		}
		if !scalarOK(l.Elem, r.Elem) {
			return InvalidT, fmt.Errorf("comparison %s cannot be applied to %s and %s", op, l, r)
		}
		return MatrixOf(BoolT, l.Rank), nil
	case l.Kind == Matrix && r.IsScalar():
		if !scalarOK(l.Elem, r) {
			return InvalidT, fmt.Errorf("comparison %s cannot be applied to %s and %s", op, l, r)
		}
		return MatrixOf(BoolT, l.Rank), nil
	case l.IsScalar() && r.Kind == Matrix:
		if !scalarOK(l, r.Elem) {
			return InvalidT, fmt.Errorf("comparison %s cannot be applied to %s and %s", op, l, r)
		}
		return MatrixOf(BoolT, r.Rank), nil
	case l.IsScalar() && r.IsScalar():
		if !scalarOK(l, r) {
			return InvalidT, fmt.Errorf("comparison %s cannot be applied to %s and %s", op, l, r)
		}
		return BoolT, nil
	}
	return InvalidT, fmt.Errorf("comparison %s cannot be applied to %s and %s", op, l, r)
}

// UnaryResult resolves unary operators, elementwise over matrices.
func UnaryResult(op ast.UnOp, x *Type) (*Type, error) {
	if x.Kind == Invalid {
		return InvalidT, nil
	}
	switch op {
	case ast.OpNeg:
		if x.IsNumeric() {
			return x, nil
		}
		if x.Kind == Matrix && x.Elem.IsNumeric() {
			return x, nil
		}
		return InvalidT, fmt.Errorf("unary - requires a numeric operand, got %s", x)
	case ast.OpNot:
		if x.Kind == Bool {
			return BoolT, nil
		}
		if x.Kind == Matrix && x.Elem.Kind == Bool {
			return x, nil
		}
		return InvalidT, fmt.Errorf("unary ! requires a bool operand, got %s", x)
	}
	return InvalidT, fmt.Errorf("unknown unary operator %v", op)
}
