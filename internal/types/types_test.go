package types

import (
	"testing"

	"repro/internal/ast"
)

func mf(rank int) *Type { return MatrixOf(FloatT, rank) }
func mi(rank int) *Type { return MatrixOf(IntT, rank) }
func mb(rank int) *Type { return MatrixOf(BoolT, rank) }

func TestString(t *testing.T) {
	cases := map[*Type]string{
		IntT:                 "int",
		mf(3):                "Matrix float <3>",
		TupleOf(mf(1), IntT): "(Matrix float <1>, int)",
		RcPtrOf(IntT):        "refcounted int *",
		FuncOf(VoidT, IntT):  "void(int)",
		AnyMatT:              "Matrix ? <?>",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(mf(2), mf(2)) || Equal(mf(2), mf(3)) || Equal(mf(2), mi(2)) {
		t.Error("matrix equality wrong")
	}
	if !Equal(TupleOf(IntT, FloatT), TupleOf(IntT, FloatT)) {
		t.Error("tuple equality wrong")
	}
	if Equal(TupleOf(IntT), TupleOf(IntT, IntT)) {
		t.Error("tuple arity")
	}
}

func TestFromAST(t *testing.T) {
	ty, err := FromAST(&ast.MatrixType{Elem: ast.PrimFloat, Rank: 3})
	if err != nil || !Equal(ty, mf(3)) {
		t.Errorf("FromAST matrix = %s, %v", ty, err)
	}
	if _, err := FromAST(&ast.MatrixType{Elem: ast.PrimVoid, Rank: 2}); err == nil {
		t.Error("void matrix should be rejected")
	}
	if _, err := FromAST(&ast.MatrixType{Elem: ast.PrimInt, Rank: 0}); err == nil {
		t.Error("rank-0 matrix should be rejected")
	}
	tt, err := FromAST(&ast.TupleType{Elems: []ast.TypeExpr{
		&ast.PrimType{Kind: ast.PrimInt}, &ast.MatrixType{Elem: ast.PrimBool, Rank: 1}}})
	if err != nil || !Equal(tt, TupleOf(IntT, mb(1))) {
		t.Errorf("FromAST tuple = %s, %v", tt, err)
	}
}

func TestAssignable(t *testing.T) {
	cases := []struct {
		src, dst *Type
		want     bool
	}{
		{IntT, FloatT, true},
		{FloatT, IntT, false},
		{AnyMatT, mf(3), true},
		{mf(3), AnyMatT, true},
		{mf(2), mf(3), false},
		{mi(2), mf(2), false}, // element types must match exactly
		{TupleOf(IntT, IntT), TupleOf(FloatT, IntT), true},
		{TupleOf(IntT), TupleOf(IntT, IntT), false},
	}
	for _, c := range cases {
		if got := AssignableTo(c.src, c.dst); got != c.want {
			t.Errorf("AssignableTo(%s, %s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestArithmeticOverloads(t *testing.T) {
	ok := []struct {
		op   ast.BinOp
		l, r *Type
		want *Type
	}{
		{ast.OpAdd, IntT, IntT, IntT},
		{ast.OpAdd, IntT, FloatT, FloatT},
		{ast.OpAdd, mf(2), mf(2), mf(2)},     // elementwise
		{ast.OpAdd, mf(2), IntT, mf(2)},      // broadcast
		{ast.OpAdd, IntT, mi(3), mi(3)},      // broadcast
		{ast.OpAdd, mi(2), FloatT, mf(2)},    // promotion
		{ast.OpMul, mf(2), mf(2), mf(2)},     // matmul rank 2
		{ast.OpMul, mf(2), FloatT, mf(2)},    // matrix * scalar
		{ast.OpElemMul, mf(3), mf(3), mf(3)}, // elementwise mul any rank
		{ast.OpDiv, mf(1), IntT, mf(1)},
		{ast.OpMod, mi(2), IntT, mi(2)},
		{ast.OpMod, IntT, IntT, IntT},
	}
	for _, c := range ok {
		got, err := BinaryResult(c.op, c.l, c.r)
		if err != nil {
			t.Errorf("%s %s %s: unexpected error %v", c.l, c.op, c.r, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("%s %s %s = %s, want %s", c.l, c.op, c.r, got, c.want)
		}
	}
	bad := []struct {
		op   ast.BinOp
		l, r *Type
	}{
		{ast.OpAdd, mf(2), mf(3)},     // rank mismatch (§III-A.2 check)
		{ast.OpMul, mf(3), mf(3)},     // matmul needs rank 2
		{ast.OpElemMul, mf(2), mf(3)}, // rank mismatch
		{ast.OpAdd, BoolT, IntT},
		{ast.OpMod, FloatT, IntT},
		{ast.OpAdd, mb(1), mb(1)}, // bool matrices are not numeric
		{ast.OpAdd, AnyMatT, IntT},
	}
	for _, c := range bad {
		if _, err := BinaryResult(c.op, c.l, c.r); err == nil {
			t.Errorf("%s %s %s should be an error", c.l, c.op, c.r)
		}
	}
}

func TestComparisons(t *testing.T) {
	got, err := BinaryResult(ast.OpLt, mf(2), IntT)
	if err != nil || !Equal(got, mb(2)) {
		t.Errorf("matrix<scalar = %s (%v), want bool matrix", got, err)
	}
	got, err = BinaryResult(ast.OpGe, mi(1), mi(1))
	if err != nil || !Equal(got, mb(1)) {
		t.Errorf("matrix>=matrix = %s (%v)", got, err)
	}
	got, err = BinaryResult(ast.OpEq, IntT, FloatT)
	if err != nil || !Equal(got, BoolT) {
		t.Errorf("int==float = %s (%v)", got, err)
	}
	if _, err = BinaryResult(ast.OpLt, BoolT, BoolT); err == nil {
		t.Error("bool < bool should be an error")
	}
	got, err = BinaryResult(ast.OpEq, mb(2), BoolT)
	if err != nil || !Equal(got, mb(2)) {
		t.Errorf("boolmatrix==bool = %s (%v)", got, err)
	}
}

func TestLogicalOps(t *testing.T) {
	got, err := BinaryResult(ast.OpAnd, BoolT, BoolT)
	if err != nil || !Equal(got, BoolT) {
		t.Errorf("bool&&bool = %s (%v)", got, err)
	}
	got, err = BinaryResult(ast.OpAnd, mb(2), mb(2))
	if err != nil || !Equal(got, mb(2)) {
		t.Errorf("elementwise && = %s (%v)", got, err)
	}
	if _, err = BinaryResult(ast.OpOr, IntT, BoolT); err == nil {
		t.Error("int||bool should be an error")
	}
	if _, err = BinaryResult(ast.OpAnd, mb(1), mb(2)); err == nil {
		t.Error("rank mismatch && should be an error")
	}
}

func TestUnary(t *testing.T) {
	if got, err := UnaryResult(ast.OpNeg, mf(2)); err != nil || !Equal(got, mf(2)) {
		t.Errorf("-matrix = %s (%v)", got, err)
	}
	if got, err := UnaryResult(ast.OpNot, mb(1)); err != nil || !Equal(got, mb(1)) {
		t.Errorf("!boolmatrix = %s (%v)", got, err)
	}
	if _, err := UnaryResult(ast.OpNeg, BoolT); err == nil {
		t.Error("-bool should be an error")
	}
	if _, err := UnaryResult(ast.OpNot, IntT); err == nil {
		t.Error("!int should be an error")
	}
}

func TestInvalidPropagatesSilently(t *testing.T) {
	if got, err := BinaryResult(ast.OpAdd, InvalidT, IntT); err != nil || got.Kind != Invalid {
		t.Error("invalid operands should not cascade errors")
	}
	if got, err := UnaryResult(ast.OpNeg, InvalidT); err != nil || got.Kind != Invalid {
		t.Error("invalid unary operand should not cascade")
	}
}
