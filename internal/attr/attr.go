// Package attr is an attribute-grammar evaluation engine in the style
// of Silver (§VI-B of the paper): declarative specifications consisting
// of nonterminal declarations, attribute declarations (synthesized and
// inherited), occurs-on declarations, per-production attribute
// equations, and production forwarding. Attribute values may themselves
// be trees ("higher-order attributes", used by the transformation
// extension in §V).
//
// Evaluation is demand-driven and memoized, with cycle detection.
// Specifications are composable: a host AGSpec plus extension AGSpecs
// merge into one evaluator, and the modular well-definedness analysis
// (mwda.go) checks, extension by extension, that any composition of
// passing extensions yields a complete attribute grammar.
package attr

import (
	"fmt"
	"sort"
	"strings"
)

// AttrKind distinguishes synthesized from inherited attributes.
type AttrKind int

// Attribute kinds.
const (
	Synthesized AttrKind = iota
	Inherited
)

func (k AttrKind) String() string {
	if k == Synthesized {
		return "synthesized"
	}
	return "inherited"
}

// AttrDecl declares an attribute.
type AttrDecl struct {
	Name  string
	Kind  AttrKind
	Owner string // "" = host
}

// NTDecl declares a nonterminal (a category of tree nodes).
type NTDecl struct {
	Name  string
	Owner string
}

// ProdDecl declares a production: a node shape with an LHS nonterminal
// and typed child slots. Variadic productions have any number of
// children, all of nonterminal ChildNTs[0] (used for statement lists
// and the like).
type ProdDecl struct {
	Name     string
	LHS      string
	ChildNTs []string
	Variadic bool
	Owner    string
}

// SynEq is a synthesized-attribute equation for one production:
// computes the attribute on the production's own node.
type SynEq struct {
	Prod  string
	Attr  string
	Owner string
	F     func(t *Tree) any
}

// InhEq is an inherited-attribute equation: the parent production
// computes the attribute for child number `child` (any child if the
// production is variadic — the index is passed to F).
type InhEq struct {
	Prod  string
	Child int // -1 for "all children" on variadic productions
	Attr  string
	Owner string
	F     func(parent *Tree, child int) any
}

// FwdEq declares that a production forwards to another tree: lookups
// of synthesized attributes with no local equation are delegated to
// the forward tree, which receives the same inherited attributes.
// This is Silver's forwarding, the mechanism that lets extension
// productions translate themselves to host-language trees.
type FwdEq struct {
	Prod  string
	Owner string
	F     func(t *Tree) *Tree
}

// AGSpec is one composable attribute-grammar fragment.
type AGSpec struct {
	Name     string // owner tag; "" = host
	NTs      []NTDecl
	Attrs    []AttrDecl
	Occurs   []Occurs
	Prods    []ProdDecl
	SynEqs   []SynEq
	InhEqs   []InhEq
	Forwards []FwdEq
}

// Occurs declares that an attribute occurs on a nonterminal.
type Occurs struct {
	Attr  string
	NT    string
	Owner string
}

// Grammar is a composed, validated attribute grammar ready to
// evaluate trees.
type Grammar struct {
	nts    map[string]NTDecl
	attrs  map[string]AttrDecl
	occurs map[[2]string]bool // [attr, nt]
	prods  map[string]ProdDecl
	synEqs map[[2]string]*SynEq // [prod, attr]
	inhEqs map[inhKey]*InhEq
	fwds   map[string]*FwdEq
	specs  []*AGSpec
}

type inhKey struct {
	prod  string
	child int
	attr  string
}

// Compose merges the host spec with extension specs into an evaluable
// grammar. Structural errors (duplicate equations, equations for
// undeclared things) are reported; completeness is the MWDA's job.
func Compose(host *AGSpec, exts ...*AGSpec) (*Grammar, error) {
	g := &Grammar{
		nts:    map[string]NTDecl{},
		attrs:  map[string]AttrDecl{},
		occurs: map[[2]string]bool{},
		prods:  map[string]ProdDecl{},
		synEqs: map[[2]string]*SynEq{},
		inhEqs: map[inhKey]*InhEq{},
		fwds:   map[string]*FwdEq{},
	}
	all := append([]*AGSpec{host}, exts...)
	g.specs = all
	for _, s := range all {
		for _, nt := range s.NTs {
			if _, dup := g.nts[nt.Name]; dup {
				return nil, fmt.Errorf("attr: nonterminal %q declared twice", nt.Name)
			}
			g.nts[nt.Name] = nt
		}
		for _, a := range s.Attrs {
			if _, dup := g.attrs[a.Name]; dup {
				return nil, fmt.Errorf("attr: attribute %q declared twice", a.Name)
			}
			g.attrs[a.Name] = a
		}
	}
	for _, s := range all {
		for _, o := range s.Occurs {
			if _, ok := g.attrs[o.Attr]; !ok {
				return nil, fmt.Errorf("attr: occurs-on references undeclared attribute %q", o.Attr)
			}
			if _, ok := g.nts[o.NT]; !ok {
				return nil, fmt.Errorf("attr: occurs-on references undeclared nonterminal %q", o.NT)
			}
			g.occurs[[2]string{o.Attr, o.NT}] = true
		}
		for _, p := range s.Prods {
			if _, dup := g.prods[p.Name]; dup {
				return nil, fmt.Errorf("attr: production %q declared twice", p.Name)
			}
			if _, ok := g.nts[p.LHS]; !ok {
				return nil, fmt.Errorf("attr: production %q has undeclared LHS %q", p.Name, p.LHS)
			}
			for _, c := range p.ChildNTs {
				if _, ok := g.nts[c]; !ok {
					return nil, fmt.Errorf("attr: production %q has undeclared child NT %q", p.Name, c)
				}
			}
			g.prods[p.Name] = p
		}
	}
	for _, s := range all {
		for i := range s.SynEqs {
			eq := &s.SynEqs[i]
			p, ok := g.prods[eq.Prod]
			if !ok {
				return nil, fmt.Errorf("attr: equation for undeclared production %q", eq.Prod)
			}
			if !g.occurs[[2]string{eq.Attr, p.LHS}] {
				return nil, fmt.Errorf("attr: equation %s.%s but %q does not occur on %q",
					eq.Prod, eq.Attr, eq.Attr, p.LHS)
			}
			k := [2]string{eq.Prod, eq.Attr}
			if prev, dup := g.synEqs[k]; dup {
				return nil, fmt.Errorf("attr: duplicate equation for %s.%s (owners %q and %q)",
					eq.Prod, eq.Attr, prev.Owner, eq.Owner)
			}
			g.synEqs[k] = eq
		}
		for i := range s.InhEqs {
			eq := &s.InhEqs[i]
			if _, ok := g.prods[eq.Prod]; !ok {
				return nil, fmt.Errorf("attr: inherited equation for undeclared production %q", eq.Prod)
			}
			k := inhKey{eq.Prod, eq.Child, eq.Attr}
			if _, dup := g.inhEqs[k]; dup {
				return nil, fmt.Errorf("attr: duplicate inherited equation %s[%d].%s", eq.Prod, eq.Child, eq.Attr)
			}
			g.inhEqs[k] = eq
		}
		for i := range s.Forwards {
			f := &s.Forwards[i]
			if _, ok := g.prods[f.Prod]; !ok {
				return nil, fmt.Errorf("attr: forward for undeclared production %q", f.Prod)
			}
			if _, dup := g.fwds[f.Prod]; dup {
				return nil, fmt.Errorf("attr: duplicate forward for %q", f.Prod)
			}
			g.fwds[f.Prod] = f
		}
	}
	return g, nil
}

// Prod returns the named production declaration.
func (g *Grammar) Prod(name string) (ProdDecl, bool) { p, ok := g.prods[name]; return p, ok }

// OccursOn reports whether attr occurs on nt.
func (g *Grammar) OccursOn(attr, nt string) bool { return g.occurs[[2]string{attr, nt}] }

// --- Trees and evaluation ---

// Tree is a decorated tree node: a production instance with children,
// an optional underlying value (e.g. the AST node or token it mirrors),
// and attribute storage.
type Tree struct {
	g        *Grammar
	prod     ProdDecl
	Value    any
	children []*Tree

	parent  *Tree
	childIx int

	synCache map[string]result
	inhCache map[string]result
	inFlight map[string]bool
	fwd      *Tree
	fwdDone  bool
}

type result struct {
	v any
}

// NewTree builds a node of the given production with children.
// Child count and child nonterminals are validated.
func (g *Grammar) NewTree(prod string, value any, children ...*Tree) (*Tree, error) {
	p, ok := g.prods[prod]
	if !ok {
		return nil, fmt.Errorf("attr: unknown production %q", prod)
	}
	if p.Variadic {
		for _, c := range children {
			if c.prod.LHS != p.ChildNTs[0] {
				return nil, fmt.Errorf("attr: %s child must be %s, got %s", prod, p.ChildNTs[0], c.prod.LHS)
			}
		}
	} else {
		if len(children) != len(p.ChildNTs) {
			return nil, fmt.Errorf("attr: %s needs %d children, got %d", prod, len(p.ChildNTs), len(children))
		}
		for i, c := range children {
			if c.prod.LHS != p.ChildNTs[i] {
				return nil, fmt.Errorf("attr: %s child %d must be %s, got %s", prod, i, p.ChildNTs[i], c.prod.LHS)
			}
		}
	}
	t := &Tree{g: g, prod: p, Value: value, children: children,
		synCache: map[string]result{}, inhCache: map[string]result{},
		inFlight: map[string]bool{}}
	for i, c := range children {
		c.parent = t
		c.childIx = i
	}
	return t, nil
}

// MustTree is NewTree panicking on error; for tests and static specs.
func (g *Grammar) MustTree(prod string, value any, children ...*Tree) *Tree {
	t, err := g.NewTree(prod, value, children...)
	if err != nil {
		panic(err)
	}
	return t
}

// Prod returns the node's production name.
func (t *Tree) Prod() string { return t.prod.Name }

// NT returns the node's nonterminal.
func (t *Tree) NT() string { return t.prod.LHS }

// NumChildren returns the child count.
func (t *Tree) NumChildren() int { return len(t.children) }

// Child returns the i'th child.
func (t *Tree) Child(i int) *Tree { return t.children[i] }

// Syn evaluates a synthesized attribute on this node.
func (t *Tree) Syn(attr string) any {
	if r, ok := t.synCache[attr]; ok {
		return r.v
	}
	if t.inFlight["s:"+attr] {
		panic(cycleError{fmt.Sprintf("attr: cycle evaluating synthesized %q on %s", attr, t.prod.Name)})
	}
	if !t.g.occurs[[2]string{attr, t.prod.LHS}] {
		panic(evalError{fmt.Sprintf("attr: %q does not occur on %s", attr, t.prod.LHS)})
	}
	t.inFlight["s:"+attr] = true
	defer delete(t.inFlight, "s:"+attr)

	var v any
	if eq, ok := t.g.synEqs[[2]string{t.prod.Name, attr}]; ok {
		v = eq.F(t)
	} else if f := t.forward(); f != nil {
		v = f.Syn(attr)
	} else {
		panic(evalError{fmt.Sprintf("attr: no equation for %s.%s and no forward", t.prod.Name, attr)})
	}
	t.synCache[attr] = result{v}
	return v
}

// Inh evaluates an inherited attribute on this node. The value comes
// from the parent's inherited equation for this child slot; a root
// node takes values seeded with SetRootInh.
func (t *Tree) Inh(attr string) any {
	if r, ok := t.inhCache[attr]; ok {
		return r.v
	}
	if t.inFlight["i:"+attr] {
		panic(cycleError{fmt.Sprintf("attr: cycle evaluating inherited %q on %s", attr, t.prod.Name)})
	}
	t.inFlight["i:"+attr] = true
	defer delete(t.inFlight, "i:"+attr)

	p := t.parent
	if p == nil {
		panic(evalError{fmt.Sprintf("attr: inherited %q demanded at root of %s without SetRootInh", attr, t.prod.Name)})
	}
	var v any
	if eq, ok := p.g.inhEqs[inhKey{p.prod.Name, t.childIx, attr}]; ok {
		v = eq.F(p, t.childIx)
	} else if eq, ok := p.g.inhEqs[inhKey{p.prod.Name, -1, attr}]; ok {
		v = eq.F(p, t.childIx)
	} else if p.isForwardParent(t) {
		// A forward tree gets the forwarding node's inherited attributes.
		v = p.Inh(attr)
	} else {
		panic(evalError{fmt.Sprintf("attr: no inherited equation for %s child %d attr %q",
			p.prod.Name, t.childIx, attr)})
	}
	t.inhCache[attr] = result{v}
	return v
}

// isForwardParent reports whether c is t's forward tree (forward trees
// set parent to the forwarding node with childIx -1).
func (t *Tree) isForwardParent(c *Tree) bool { return t.fwd == c }

// SetRootInh seeds an inherited attribute at the tree root.
func (t *Tree) SetRootInh(attr string, v any) { t.inhCache[attr] = result{v} }

// forward computes (once) the production's forward tree, if any.
func (t *Tree) forward() *Tree {
	if t.fwdDone {
		return t.fwd
	}
	t.fwdDone = true
	if f, ok := t.g.fwds[t.prod.Name]; ok {
		ft := f.F(t)
		if ft != nil {
			ft.parent = t
			ft.childIx = -1
			t.fwd = ft
		}
	}
	return t.fwd
}

// Forward exposes the forward tree (or nil); used by tests.
func (t *Tree) Forward() *Tree { return t.forward() }

type cycleError struct{ msg string }
type evalError struct{ msg string }

func (e cycleError) Error() string { return e.msg }
func (e evalError) Error() string  { return e.msg }

// SafeSyn evaluates a synthesized attribute, converting evaluation
// panics (cycles, missing equations) into errors.
func (t *Tree) SafeSyn(attr string) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case cycleError:
				err = e
			case evalError:
				err = e
			default:
				panic(r)
			}
		}
	}()
	return t.Syn(attr), nil
}

// String renders the tree structure (productions only).
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(t *Tree, depth int)
	rec = func(t *Tree, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(t.prod.Name)
		if len(t.children) == 0 {
			b.WriteByte('\n')
			return
		}
		b.WriteByte('\n')
		for _, c := range t.children {
			rec(c, depth+1)
		}
	}
	rec(t, 0)
	return b.String()
}

// AttrsOn returns the names of attributes occurring on nt, sorted.
func (g *Grammar) AttrsOn(nt string, kind AttrKind) []string {
	var out []string
	for k := range g.occurs {
		if k[1] == nt && g.attrs[k[0]].Kind == kind {
			out = append(out, k[0])
		}
	}
	sort.Strings(out)
	return out
}
