package attr

import (
	"strings"
	"testing"
)

// demoHost builds a small expression-language attribute grammar:
// nonterminal Expr with productions const(n) and add(l, r); synthesized
// "value" and "depth"; inherited "scale" multiplying every leaf.
func demoHost() *AGSpec {
	return &AGSpec{
		Name: "",
		NTs:  []NTDecl{{Name: "Expr"}},
		Attrs: []AttrDecl{
			{Name: "value", Kind: Synthesized},
			{Name: "scale", Kind: Inherited},
		},
		Occurs: []Occurs{
			{Attr: "value", NT: "Expr"},
			{Attr: "scale", NT: "Expr"},
		},
		Prods: []ProdDecl{
			{Name: "const", LHS: "Expr"},
			{Name: "add", LHS: "Expr", ChildNTs: []string{"Expr", "Expr"}},
		},
		SynEqs: []SynEq{
			{Prod: "const", Attr: "value", F: func(t *Tree) any {
				return t.Value.(int) * t.Inh("scale").(int)
			}},
			{Prod: "add", Attr: "value", F: func(t *Tree) any {
				return t.Child(0).Syn("value").(int) + t.Child(1).Syn("value").(int)
			}},
		},
		InhEqs: []InhEq{
			{Prod: "add", Child: -1, Attr: "scale", F: func(p *Tree, c int) any {
				return p.Inh("scale")
			}},
		},
	}
}

// doubleExt adds production double(e) that FORWARDS to add(e, e): the
// Silver mechanism extension constructs use to obtain host semantics.
func doubleExt() *AGSpec {
	return &AGSpec{
		Name:  "double",
		Prods: []ProdDecl{{Name: "double", LHS: "Expr", ChildNTs: []string{"Expr"}, Owner: "double"}},
		InhEqs: []InhEq{
			{Prod: "double", Child: 0, Attr: "scale", Owner: "double", F: func(p *Tree, c int) any {
				return p.Inh("scale")
			}},
		},
		Forwards: []FwdEq{
			{Prod: "double", Owner: "double", F: func(t *Tree) *Tree {
				// forward: double(e) -> add(e, e)
				return t.g.MustTree("add", nil, t.Child(0), cloneLeafy(t.g, t.Child(0)))
			}},
		},
	}
}

// cloneLeafy deep-copies a tree (same productions/values).
func cloneLeafy(g *Grammar, t *Tree) *Tree {
	kids := make([]*Tree, t.NumChildren())
	for i := range kids {
		kids[i] = cloneLeafy(g, t.Child(i))
	}
	return g.MustTree(t.Prod(), t.Value, kids...)
}

// depthExt adds a new synthesized attribute "depth" on the host
// nonterminal, with equations for every host production — rule 3.
func depthExt() *AGSpec {
	return &AGSpec{
		Name:   "depth",
		Attrs:  []AttrDecl{{Name: "depth", Kind: Synthesized, Owner: "depth"}},
		Occurs: []Occurs{{Attr: "depth", NT: "Expr", Owner: "depth"}},
		SynEqs: []SynEq{
			{Prod: "const", Attr: "depth", Owner: "depth", F: func(t *Tree) any { return 1 }},
			{Prod: "add", Attr: "depth", Owner: "depth", F: func(t *Tree) any {
				a := t.Child(0).Syn("depth").(int)
				b := t.Child(1).Syn("depth").(int)
				if a > b {
					return a + 1
				}
				return b + 1
			}},
		},
	}
}

func buildDemo(t *testing.T, exts ...*AGSpec) *Grammar {
	t.Helper()
	g, err := Compose(demoHost(), exts...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func leaf(g *Grammar, n int) *Tree { return g.MustTree("const", n) }

func TestBasicEvaluation(t *testing.T) {
	g := buildDemo(t)
	// (1 + 2) + 4, scale 10 => 70
	tree := g.MustTree("add", nil, g.MustTree("add", nil, leaf(g, 1), leaf(g, 2)), leaf(g, 4))
	tree.SetRootInh("scale", 10)
	if v := tree.Syn("value"); v != 70 {
		t.Errorf("value = %v, want 70", v)
	}
}

func TestMemoization(t *testing.T) {
	calls := 0
	host := demoHost()
	host.SynEqs[0].F = func(t *Tree) any {
		calls++
		return t.Value.(int) * t.Inh("scale").(int)
	}
	g, err := Compose(host)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.MustTree("const", 5)
	tree.SetRootInh("scale", 2)
	tree.Syn("value")
	tree.Syn("value")
	if calls != 1 {
		t.Errorf("equation evaluated %d times, want 1 (memoized)", calls)
	}
}

func TestForwardingProvidesHostSemantics(t *testing.T) {
	g := buildDemo(t, doubleExt())
	// double(3) with scale 2 forwards to add(3,3) => 12
	tree := g.MustTree("double", nil, leaf(g, 3))
	tree.SetRootInh("scale", 2)
	if v := tree.Syn("value"); v != 12 {
		t.Errorf("double value = %v, want 12", v)
	}
	if tree.Forward() == nil || tree.Forward().Prod() != "add" {
		t.Error("forward tree should be an add production")
	}
}

func TestForwardSeesForwardersInherited(t *testing.T) {
	g := buildDemo(t, doubleExt())
	inner := g.MustTree("double", nil, leaf(g, 1))
	root := g.MustTree("add", nil, inner, leaf(g, 5))
	root.SetRootInh("scale", 3)
	// add(double(1), 5) @3 = (1*3 + 1*3) + 15 = 21
	if v := root.Syn("value"); v != 21 {
		t.Errorf("value = %v, want 21", v)
	}
}

func TestNewAttributeViaExtension(t *testing.T) {
	g := buildDemo(t, doubleExt(), depthExt())
	tree := g.MustTree("add", nil, g.MustTree("double", nil, leaf(g, 1)), leaf(g, 2))
	tree.SetRootInh("scale", 1)
	// depth on double has no equation -> computed on the forward add(e,e):
	// depth(double(1)) = depth(add(1,1)) = 2; root = 3.
	if v := tree.Syn("depth"); v != 3 {
		t.Errorf("depth = %v, want 3", v)
	}
}

// Higher-order attributes: an attribute whose value is a tree — here a
// "simplified" attribute that rebuilds the expression with constants
// folded, mirroring the paper's use of higher-order attributes for
// the loop transformations of §V.
func TestHigherOrderAttribute(t *testing.T) {
	host := demoHost()
	host.Attrs = append(host.Attrs, AttrDecl{Name: "folded", Kind: Synthesized})
	host.Occurs = append(host.Occurs, Occurs{Attr: "folded", NT: "Expr"})
	host.SynEqs = append(host.SynEqs,
		SynEq{Prod: "const", Attr: "folded", F: func(t *Tree) any {
			return t.g.MustTree("const", t.Value)
		}},
		SynEq{Prod: "add", Attr: "folded", F: func(t *Tree) any {
			l := t.Child(0).Syn("folded").(*Tree)
			r := t.Child(1).Syn("folded").(*Tree)
			if l.Prod() == "const" && r.Prod() == "const" {
				return t.g.MustTree("const", l.Value.(int)+r.Value.(int))
			}
			return t.g.MustTree("add", nil, l, r)
		}})
	g, err := Compose(host)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.MustTree("add", nil, g.MustTree("add", nil, leaf(g, 1), leaf(g, 2)), leaf(g, 4))
	folded := tree.Syn("folded").(*Tree)
	if folded.Prod() != "const" || folded.Value.(int) != 7 {
		t.Errorf("folded = %s value %v, want const 7", folded.Prod(), folded.Value)
	}
}

func TestCycleDetection(t *testing.T) {
	host := &AGSpec{
		NTs:    []NTDecl{{Name: "X"}},
		Attrs:  []AttrDecl{{Name: "a", Kind: Synthesized}, {Name: "b", Kind: Synthesized}},
		Occurs: []Occurs{{Attr: "a", NT: "X"}, {Attr: "b", NT: "X"}},
		Prods:  []ProdDecl{{Name: "x", LHS: "X"}},
		SynEqs: []SynEq{
			{Prod: "x", Attr: "a", F: func(t *Tree) any { return t.Syn("b") }},
			{Prod: "x", Attr: "b", F: func(t *Tree) any { return t.Syn("a") }},
		},
	}
	g, err := Compose(host)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.MustTree("x", nil)
	if _, err := tree.SafeSyn("a"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestMissingEquationError(t *testing.T) {
	host := demoHost()
	host.SynEqs = host.SynEqs[:1] // drop add.value
	g, err := Compose(host)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.MustTree("add", nil, leaf(g, 1), leaf(g, 2))
	tree.SetRootInh("scale", 1)
	if _, err := tree.SafeSyn("value"); err == nil || !strings.Contains(err.Error(), "no equation") {
		t.Errorf("expected missing-equation error, got %v", err)
	}
}

func TestComposeRejectsDuplicates(t *testing.T) {
	dup := &AGSpec{
		Name: "dup",
		SynEqs: []SynEq{
			{Prod: "const", Attr: "value", Owner: "dup", F: func(t *Tree) any { return 0 }},
		},
	}
	if _, err := Compose(demoHost(), dup); err == nil {
		t.Error("duplicate equation should be rejected at composition")
	}
}

func TestTreeValidation(t *testing.T) {
	g := buildDemo(t)
	if _, err := g.NewTree("add", nil, leaf(g, 1)); err == nil {
		t.Error("wrong child count should error")
	}
	if _, err := g.NewTree("nope", nil); err == nil {
		t.Error("unknown production should error")
	}
}

// --- MWDA tests ---

func TestMWDAAcceptsForwardingExtension(t *testing.T) {
	r := CheckWellDefined(demoHost(), doubleExt())
	if !r.Passed {
		t.Fatalf("double extension should pass MWDA: %s", r)
	}
}

func TestMWDAAcceptsNewAttributeExtension(t *testing.T) {
	r := CheckWellDefined(demoHost(), depthExt())
	if !r.Passed {
		t.Fatalf("depth extension should pass MWDA: %s", r)
	}
}

func TestMWDARejectsNonForwardingProduction(t *testing.T) {
	broken := &AGSpec{
		Name:  "broken",
		Prods: []ProdDecl{{Name: "neg", LHS: "Expr", ChildNTs: []string{"Expr"}, Owner: "broken"}},
		// no value equation, no forward => host attribute undefined here
		InhEqs: []InhEq{
			{Prod: "neg", Child: 0, Attr: "scale", Owner: "broken", F: func(p *Tree, c int) any {
				return p.Inh("scale")
			}},
		},
	}
	r := CheckWellDefined(demoHost(), broken)
	if r.Passed {
		t.Fatal("non-forwarding production without host equations must fail MWDA")
	}
	if !strings.Contains(r.Failures[0], "forward") {
		t.Errorf("failure should mention forwarding: %v", r.Failures)
	}
}

func TestMWDARejectsIncompleteNewAttribute(t *testing.T) {
	partial := depthExt()
	partial.SynEqs = partial.SynEqs[:1] // only const, missing add
	r := CheckWellDefined(demoHost(), partial)
	if r.Passed {
		t.Fatal("new attribute missing host-production equations must fail MWDA")
	}
}

func TestMWDARejectsEquationOnForeignPair(t *testing.T) {
	meddler := &AGSpec{
		Name: "meddler",
		SynEqs: []SynEq{
			// host production + host attribute: meddler owns neither.
			{Prod: "const", Attr: "value", Owner: "meddler", F: func(t *Tree) any { return 0 }},
		},
	}
	r := CheckWellDefined(demoHost(), meddler)
	if r.Passed {
		t.Fatal("equation on host production for host attribute must fail MWDA")
	}
}

func TestMWDARejectsMissingInherited(t *testing.T) {
	broken := doubleExt()
	broken.InhEqs = nil // forgot to pass scale down
	r := CheckWellDefined(demoHost(), broken)
	if r.Passed {
		t.Fatal("missing inherited equation must fail MWDA")
	}
	if !strings.Contains(strings.Join(r.Failures, " "), "inherited") {
		t.Errorf("failure should mention inherited: %v", r.Failures)
	}
}

// The MWDA guarantee: extensions that pass individually compose into a
// complete grammar.
func TestMWDAGuarantee(t *testing.T) {
	for _, e := range []*AGSpec{doubleExt(), depthExt()} {
		if r := CheckWellDefined(demoHost(), e); !r.Passed {
			t.Fatalf("precondition: %s should pass: %s", e.Name, r)
		}
	}
	g := buildDemo(t, doubleExt(), depthExt())
	if missing := g.CheckComplete(); len(missing) != 0 {
		t.Errorf("composed grammar incomplete: %v", missing)
	}
	// And it actually evaluates, cross-extension.
	tree := g.MustTree("double", nil, g.MustTree("double", nil, leaf(g, 2)))
	tree.SetRootInh("scale", 1)
	if v := tree.Syn("value"); v != 8 {
		t.Errorf("value = %v, want 8", v)
	}
	if v := tree.Syn("depth"); v != 3 {
		t.Errorf("depth = %v, want 3", v)
	}
}

func TestVariadicProduction(t *testing.T) {
	host := &AGSpec{
		NTs:    []NTDecl{{Name: "L"}, {Name: "E"}},
		Attrs:  []AttrDecl{{Name: "sum", Kind: Synthesized}, {Name: "v", Kind: Synthesized}},
		Occurs: []Occurs{{Attr: "sum", NT: "L"}, {Attr: "v", NT: "E"}},
		Prods: []ProdDecl{
			{Name: "list", LHS: "L", ChildNTs: []string{"E"}, Variadic: true},
			{Name: "num", LHS: "E"},
		},
		SynEqs: []SynEq{
			{Prod: "num", Attr: "v", F: func(t *Tree) any { return t.Value.(int) }},
			{Prod: "list", Attr: "sum", F: func(t *Tree) any {
				s := 0
				for i := 0; i < t.NumChildren(); i++ {
					s += t.Child(i).Syn("v").(int)
				}
				return s
			}},
		},
	}
	g, err := Compose(host)
	if err != nil {
		t.Fatal(err)
	}
	l := g.MustTree("list", nil, g.MustTree("num", 1), g.MustTree("num", 2), g.MustTree("num", 3))
	if v := l.Syn("sum"); v != 6 {
		t.Errorf("sum = %v", v)
	}
}

func TestTreeStringAndAccessors(t *testing.T) {
	g := buildDemo(t)
	tree := g.MustTree("add", nil, leaf(g, 1), leaf(g, 2))
	s := tree.String()
	if !strings.Contains(s, "add") || !strings.Contains(s, "const") {
		t.Errorf("tree string = %q", s)
	}
	if tree.Prod() != "add" || tree.NT() != "Expr" || tree.NumChildren() != 2 {
		t.Error("accessors wrong")
	}
	if got := g.AttrsOn("Expr", Synthesized); len(got) != 1 || got[0] != "value" {
		t.Errorf("AttrsOn = %v", got)
	}
	if got := g.AttrsOn("Expr", Inherited); len(got) != 1 || got[0] != "scale" {
		t.Errorf("AttrsOn inherited = %v", got)
	}
	if _, ok := g.Prod("add"); !ok {
		t.Error("Prod lookup failed")
	}
	if !g.OccursOn("value", "Expr") || g.OccursOn("value", "Nope") {
		t.Error("OccursOn wrong")
	}
}

func TestComposeStructuralErrors(t *testing.T) {
	base := demoHost()
	cases := []*AGSpec{
		// duplicate NT
		{Name: "x", NTs: []NTDecl{{Name: "Expr", Owner: "x"}}},
		// duplicate attr
		{Name: "x", Attrs: []AttrDecl{{Name: "value", Kind: Synthesized, Owner: "x"}}},
		// occurs on undeclared attr
		{Name: "x", Occurs: []Occurs{{Attr: "ghost", NT: "Expr", Owner: "x"}}},
		// occurs on undeclared NT
		{Name: "x", Attrs: []AttrDecl{{Name: "a2", Kind: Synthesized, Owner: "x"}},
			Occurs: []Occurs{{Attr: "a2", NT: "Ghost", Owner: "x"}}},
		// production with undeclared LHS
		{Name: "x", Prods: []ProdDecl{{Name: "p", LHS: "Ghost", Owner: "x"}}},
		// duplicate production
		{Name: "x", Prods: []ProdDecl{{Name: "const", LHS: "Expr", Owner: "x"}}},
		// equation on undeclared production
		{Name: "x", SynEqs: []SynEq{{Prod: "ghost", Attr: "value", Owner: "x",
			F: func(t *Tree) any { return 0 }}}},
		// equation for attr not occurring on LHS
		{Name: "x", Attrs: []AttrDecl{{Name: "other", Kind: Synthesized, Owner: "x"}},
			SynEqs: []SynEq{{Prod: "const", Attr: "other", Owner: "x",
				F: func(t *Tree) any { return 0 }}}},
		// forward on undeclared production
		{Name: "x", Forwards: []FwdEq{{Prod: "ghost", Owner: "x",
			F: func(t *Tree) *Tree { return nil }}}},
	}
	for i, ext := range cases {
		if _, err := Compose(base, ext); err == nil {
			t.Errorf("case %d should fail composition", i)
		}
		base = demoHost() // fresh host each round
	}
}

func TestInheritedAtRootWithoutSeed(t *testing.T) {
	g := buildDemo(t)
	tree := leaf(g, 3)
	if _, err := tree.SafeSyn("value"); err == nil ||
		!strings.Contains(err.Error(), "SetRootInh") {
		t.Errorf("expected root-inherited error, got %v", err)
	}
}

func TestUndeclaredAttributeDemand(t *testing.T) {
	g := buildDemo(t)
	tree := leaf(g, 3)
	if _, err := tree.SafeSyn("ghost"); err == nil {
		t.Error("demanding an attribute that does not occur should error")
	}
}

func TestMWDARejectsForwardOnForeignProduction(t *testing.T) {
	bad := &AGSpec{
		Name: "bad",
		Forwards: []FwdEq{{Prod: "const", Owner: "bad",
			F: func(t *Tree) *Tree { return nil }}},
	}
	r := CheckWellDefined(demoHost(), bad)
	if r.Passed {
		t.Fatal("forward on a host production must fail MWDA")
	}
}

func TestMWDAReportString(t *testing.T) {
	r := CheckWellDefined(demoHost(), doubleExt())
	if !strings.Contains(r.String(), "PASS") {
		t.Errorf("report = %q", r.String())
	}
	bad := CheckWellDefined(demoHost(), &AGSpec{Name: "bad",
		SynEqs: []SynEq{{Prod: "const", Attr: "value", Owner: "bad",
			F: func(t *Tree) any { return 0 }}}})
	if !strings.Contains(bad.String(), "FAIL") {
		t.Errorf("report = %q", bad.String())
	}
}
