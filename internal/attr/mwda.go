// The modular well-definedness analysis (MWDA) of §VI-B, after
// Kaminski & Van Wyk (SLE 2012). Run by an extension developer on
// their extension against the host grammar alone, it guarantees that
// any composition of passing extensions yields a complete attribute
// grammar — every attribute demanded anywhere has a defining equation
// (possibly via forwarding).
//
// The rules checked here, per extension E over host H:
//
//  1. Equation ownership: E may define an equation (p, a) only if E
//     owns p or E owns a. (Otherwise two extensions could both define
//     host equations and collide.)
//  2. New-production completeness: every production E adds with an LHS
//     nonterminal it does not own must either forward, or provide
//     equations for ALL synthesized attributes known to occur on that
//     LHS in H ∪ E. Forwarding is what makes the production's
//     semantics available for attributes E cannot see (those added by
//     other extensions).
//  3. New-attribute completeness: for every synthesized attribute a
//     that E declares occurring on a nonterminal X that E does not
//     own, E must provide equations for a on ALL of H's productions
//     of X (other extensions' productions forward, so a is computable
//     there).
//  4. Inherited completeness: for every production p visible to E that
//     E owns, and every child slot of p, equations must exist for all
//     inherited attributes occurring on the child's nonterminal in
//     H ∪ E. For host productions, E must supply inherited equations
//     for any inherited attributes E itself declares on host child
//     nonterminals (rule 3's inherited dual) — or declare none.
//  5. Forward ownership: E may only declare forwards on its own
//     productions, and a forwarded production must still satisfy rule
//     1 for any explicit equations it has.
package attr

import (
	"fmt"
	"sort"
	"strings"
)

// MWDAReport is the outcome of the analysis for one extension.
type MWDAReport struct {
	Extension string
	Passed    bool
	Failures  []string
}

func (r MWDAReport) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "extension %q MWDA: %s", r.Extension, status)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  fail: %s", f)
	}
	return b.String()
}

// CheckWellDefined runs the MWDA for ext against host.
func CheckWellDefined(host *AGSpec, ext *AGSpec) MWDAReport {
	r := MWDAReport{Extension: ext.Name}
	fail := func(format string, args ...any) {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}

	// Index the combined view H ∪ E.
	ntOwner := map[string]string{}
	for _, n := range host.NTs {
		ntOwner[n.Name] = host.Name
	}
	for _, n := range ext.NTs {
		ntOwner[n.Name] = ext.Name
	}
	attrOwner := map[string]string{}
	attrKind := map[string]AttrKind{}
	for _, s := range []*AGSpec{host, ext} {
		for _, a := range s.Attrs {
			attrOwner[a.Name] = s.Name
			attrKind[a.Name] = a.Kind
		}
	}
	prodOwner := map[string]string{}
	prodOf := map[string]ProdDecl{}
	prodsByLHS := map[string][]ProdDecl{}
	for _, s := range []*AGSpec{host, ext} {
		for _, p := range s.Prods {
			prodOwner[p.Name] = s.Name
			prodOf[p.Name] = p
			prodsByLHS[p.LHS] = append(prodsByLHS[p.LHS], p)
		}
	}
	occurs := map[[2]string]bool{}
	occursOwner := map[[2]string]string{}
	for _, s := range []*AGSpec{host, ext} {
		for _, o := range s.Occurs {
			occurs[[2]string{o.Attr, o.NT}] = true
			occursOwner[[2]string{o.Attr, o.NT}] = s.Name
		}
	}
	synEq := map[[2]string]string{} // (prod, attr) -> owner
	for _, s := range []*AGSpec{host, ext} {
		for _, e := range s.SynEqs {
			synEq[[2]string{e.Prod, e.Attr}] = s.Name
		}
	}
	inhEq := map[inhKey]string{}
	for _, s := range []*AGSpec{host, ext} {
		for _, e := range s.InhEqs {
			inhEq[inhKey{e.Prod, e.Child, e.Attr}] = s.Name
		}
	}
	fwd := map[string]string{}
	for _, s := range []*AGSpec{host, ext} {
		for _, f := range s.Forwards {
			fwd[f.Prod] = s.Name
		}
	}

	// Rule 1: equation ownership.
	for _, e := range ext.SynEqs {
		po, known := prodOwner[e.Prod]
		if !known {
			fail("equation %s.%s references a production not visible to %s", e.Prod, e.Attr, ext.Name)
			continue
		}
		ao := attrOwner[e.Attr]
		if po != ext.Name && ao != ext.Name {
			fail("equation %s.%s: %s owns neither the production (%s) nor the attribute (%s)",
				e.Prod, e.Attr, ext.Name, orHost(po), orHost(ao))
		}
	}
	for _, e := range ext.InhEqs {
		po := prodOwner[e.Prod]
		ao := attrOwner[e.Attr]
		if po != ext.Name && ao != ext.Name {
			fail("inherited equation %s[%d].%s: %s owns neither production nor attribute",
				e.Prod, e.Child, e.Attr, ext.Name)
		}
	}

	// Rule 5: forward ownership.
	for _, f := range ext.Forwards {
		if prodOwner[f.Prod] != ext.Name {
			fail("forward on %s, a production %s does not own", f.Prod, ext.Name)
		}
	}

	// Rule 2: new-production completeness.
	for _, p := range ext.Prods {
		if ntOwner[p.LHS] == ext.Name {
			continue // extension's own nonterminal: checked like a host NT below
		}
		if _, hasFwd := fwd[p.Name]; hasFwd {
			continue
		}
		for occ := range occurs {
			if occ[1] != p.LHS || attrKind[occ[0]] != Synthesized {
				continue
			}
			if _, ok := synEq[[2]string{p.Name, occ[0]}]; !ok {
				fail("production %s (on %s nonterminal %s) has no equation for synthesized %q and does not forward",
					p.Name, orHost(ntOwner[p.LHS]), p.LHS, occ[0])
			}
		}
	}
	// Extension-owned nonterminals: ordinary completeness within E.
	for _, p := range ext.Prods {
		if ntOwner[p.LHS] != ext.Name {
			continue
		}
		if _, hasFwd := fwd[p.Name]; hasFwd {
			continue
		}
		for occ := range occurs {
			if occ[1] != p.LHS || attrKind[occ[0]] != Synthesized {
				continue
			}
			if _, ok := synEq[[2]string{p.Name, occ[0]}]; !ok {
				fail("production %s has no equation for synthesized %q on its own nonterminal %s",
					p.Name, occ[0], p.LHS)
			}
		}
	}

	// Rule 3: new synthesized attributes occurring on host nonterminals.
	for _, o := range ext.Occurs {
		if attrOwner[o.Attr] != ext.Name || attrKind[o.Attr] != Synthesized {
			continue
		}
		if ntOwner[o.NT] == ext.Name {
			continue
		}
		for _, p := range prodsByLHS[o.NT] {
			if prodOwner[p.Name] != host.Name {
				continue // extension's own productions were checked by rule 2
			}
			if _, ok := synEq[[2]string{p.Name, o.Attr}]; ok {
				continue
			}
			if _, hasFwd := fwd[p.Name]; hasFwd {
				continue
			}
			fail("attribute %q occurs on host nonterminal %s but host production %s has no equation for it",
				o.Attr, o.NT, p.Name)
		}
	}

	// Rule 4: inherited completeness on the extension's productions.
	for _, p := range ext.Prods {
		for ci, cnt := range p.ChildNTs {
			for occ := range occurs {
				if occ[1] != cnt || attrKind[occ[0]] != Inherited {
					continue
				}
				_, specific := inhEq[inhKey{p.Name, ci, occ[0]}]
				_, blanket := inhEq[inhKey{p.Name, -1, occ[0]}]
				if !specific && !blanket {
					fail("production %s does not define inherited %q for child %d (%s)",
						p.Name, occ[0], ci, cnt)
				}
			}
		}
	}
	// Inherited dual of rule 3: extension-declared inherited attributes
	// on host child nonterminals require equations on host productions.
	for _, o := range ext.Occurs {
		if attrOwner[o.Attr] != ext.Name || attrKind[o.Attr] != Inherited {
			continue
		}
		if ntOwner[o.NT] == ext.Name {
			continue
		}
		for pname, po := range prodOwner {
			if po != host.Name {
				continue
			}
			p := prodOf[pname]
			for ci, cnt := range p.ChildNTs {
				if cnt != o.NT {
					continue
				}
				_, specific := inhEq[inhKey{pname, ci, o.Attr}]
				_, blanket := inhEq[inhKey{pname, -1, o.Attr}]
				if !specific && !blanket {
					fail("extension inherited attribute %q occurs on host %s but host production %s child %d has no equation",
						o.Attr, o.NT, pname, ci)
				}
			}
		}
	}

	sort.Strings(r.Failures)
	r.Passed = len(r.Failures) == 0
	return r
}

func orHost(owner string) string {
	if owner == "" {
		return "host"
	}
	return owner
}

// CheckComplete verifies global completeness of a composed grammar:
// every production has equations (or a forward) for every synthesized
// attribute on its LHS, and inherited equations for all children.
// This is the conclusion the MWDA guarantees; the tests verify both.
func (g *Grammar) CheckComplete() []string {
	var out []string
	for name, p := range g.prods {
		_, hasFwd := g.fwds[name]
		for occ := range g.occurs {
			if occ[1] == p.LHS && g.attrs[occ[0]].Kind == Synthesized {
				if _, ok := g.synEqs[[2]string{name, occ[0]}]; !ok && !hasFwd {
					out = append(out, fmt.Sprintf("%s lacks equation for %s", name, occ[0]))
				}
			}
		}
		for ci, cnt := range p.ChildNTs {
			for occ := range g.occurs {
				if occ[1] == cnt && g.attrs[occ[0]].Kind == Inherited {
					_, s := g.inhEqs[inhKey{name, ci, occ[0]}]
					_, b := g.inhEqs[inhKey{name, -1, occ[0]}]
					if !s && !b {
						out = append(out, fmt.Sprintf("%s child %d lacks inherited %s", name, ci, occ[0]))
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}
