// End-to-end integration tests: the programs in testdata/ run through
// the full pipeline — scan, parse with the composed grammars, check
// with the composed attribute-grammar semantics, execute on the
// parallel interpreter — with their printed output verified, RC
// accounting leak-checked, and results identical across thread counts.
package repro_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/rc"
)

// sshCube builds a deterministic SSH input for the testdata programs.
func sshCube(m, n, p int, seed int64) *matrix.Matrix {
	cube := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(seed))
	fl := cube.Floats()
	for k := range fl {
		fl[k] = float64(int(r.Float64()*1000)) / 100 // short decimals print cleanly
	}
	return cube
}

func runTestdata(t *testing.T, file string, files map[string]*matrix.Matrix, threads int) (string, *rc.Heap) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	heap := rc.NewHeap()
	code, res, err := core.Run(file, string(src), core.Config{}, interp.Options{
		Files: files, Threads: threads, Stdout: &out, Heap: heap, MaxSteps: 50_000_000,
	})
	if err != nil {
		t.Fatalf("%s: %v\n%s", file, err, res.Diags.String())
	}
	if code != 0 {
		t.Fatalf("%s: exit code %d", file, code)
	}
	return out.String(), heap
}

func TestIntegrationIndexing(t *testing.T) {
	out, heap := runTestdata(t, "indexing.xc", nil, 1)
	want := "9\n5\n4\n5\n12\n2\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	if err := heap.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationTuplesRc(t *testing.T) {
	out, heap := runTestdata(t, "tuples_rc.xc", nil, 1)
	want := "9\n2\nfalse\n92\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	if err := heap.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationCilkFib(t *testing.T) {
	out, heap := runTestdata(t, "cilk_fib.xc", nil, 1)
	if strings.TrimSpace(out) != "377" {
		t.Fatalf("output = %q, want 377", out)
	}
	if err := heap.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationFig1AcrossThreadCounts(t *testing.T) {
	ssh := sshCube(6, 7, 8, 11)
	var ref *matrix.Matrix
	var refOut string
	for _, threads := range []int{1, 2, 4} {
		files := map[string]*matrix.Matrix{"ssh.data": ssh}
		out, heap := runTestdata(t, "fig1_temporalmean.xc", files, threads)
		if err := heap.CheckLeaks(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		means := files["means.data"]
		if means == nil {
			t.Fatalf("threads=%d: no output matrix", threads)
		}
		if ref == nil {
			ref, refOut = means, out
			continue
		}
		if !matrix.Equal(ref, means) {
			t.Fatalf("threads=%d: result differs from single-threaded run", threads)
		}
		if out != refOut {
			t.Fatalf("threads=%d: stdout differs", threads)
		}
	}
}

func TestIntegrationTransformedMeanMatchesPlain(t *testing.T) {
	// The §V transformations must not change the computed result —
	// the transformed program and the plain Fig 1 program agree.
	ssh := sshCube(5, 8, 6, 23)
	plain := map[string]*matrix.Matrix{"ssh.data": ssh}
	runTestdata(t, "fig1_temporalmean.xc", plain, 1)
	transformed := map[string]*matrix.Matrix{"ssh.data": ssh}
	runTestdata(t, "transform_mean.xc", transformed, 2)
	if !matrix.Equal(plain["means.data"], transformed["means.data"]) {
		t.Fatal("transformed with-loop computed a different result")
	}
}

// Every testdata program must also translate to C without errors in
// every parallelization mode (compilation by gcc is covered in
// internal/cgen's tests).
func TestIntegrationAllProgramsTranslate(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".xc") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		res := core.Compile(e.Name(), string(src), core.Config{})
		if res.Diags.HasErrors() {
			t.Errorf("%s: %s", e.Name(), res.Diags.String())
		}
		if !strings.Contains(res.C, "u_main") {
			t.Errorf("%s: no main emitted", e.Name())
		}
	}
}
