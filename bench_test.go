// Benchmark harness: one benchmark per experiment in DESIGN.md's
// per-experiment index (E1–E10). The paper's evaluation is
// qualitative — code-generation figures plus scaling and design-choice
// claims — so each benchmark regenerates the corresponding artifact or
// measures the corresponding claim; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/eddy"
	"repro/internal/grammar"
	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/parser"
	"repro/internal/rc"
	"repro/internal/sem"
)

const fig1Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`

const fig9Src = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p)
		transform
			split j by 4, jin, jout.
			vectorize jin.
			parallelize i;
	writeMatrix("means.data", means);
	return 0;
}
`

// E1 — Fig 1 → Fig 3: full translation of the temporal-mean program
// to the expanded parallel-C loop nest.
func BenchmarkE1_TemporalMeanCodegen(b *testing.B) {
	opts := cgen.Options{Par: cgen.ParNone, Optimize: true}
	for i := 0; i < b.N; i++ {
		res := core.Compile("fig1.xc", fig1Src, core.Config{Codegen: &opts})
		if res.Diags.HasErrors() {
			b.Fatal(res.Diags.String())
		}
	}
}

// E2 — Fig 9 → Fig 10: the split transformation on the expanded nest.
func BenchmarkE2_SplitTransform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := &loopir.Loop{Index: "k", Lo: loopir.IC(0), Hi: loopir.V("p"), Body: []loopir.Stmt{
			&loopir.AssignStmt{LHS: loopir.V("tmp"),
				RHS: loopir.B("+", loopir.V("tmp"), loopir.Ld("mat", loopir.V("k")))},
		}}
		j := &loopir.Loop{Index: "j", Lo: loopir.IC(0), Hi: loopir.IC(1440), Body: []loopir.Stmt{
			&loopir.DeclStmt{CType: "float", Name: "tmp", Init: loopir.FC(0)}, k,
			&loopir.AssignStmt{LHS: loopir.Ld("means", loopir.V("j")), RHS: loopir.V("tmp")},
		}}
		nest := []loopir.Stmt{&loopir.Loop{Index: "i", Lo: loopir.IC(0), Hi: loopir.IC(721),
			Body: []loopir.Stmt{j}}}
		if _, err := loopir.Split(nest, "j", 4, "jin", "jout"); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — Fig 10 → Fig 11: full translation with vectorize+parallelize
// to SSE intrinsics and an OpenMP pragma.
func BenchmarkE3_VectorizeCodegen(b *testing.B) {
	opts := cgen.Options{Par: cgen.ParOMP, Optimize: true}
	for i := 0; i < b.N; i++ {
		res := core.Compile("fig9.xc", fig9Src, core.Config{Codegen: &opts})
		if res.Diags.HasErrors() {
			b.Fatal(res.Diags.String())
		}
	}
}

// E4 — §V's scaling claim: auto-parallelized with-loop throughput as
// the worker count grows (the paper reports near-linear scaling on a
// 2 x 6-core machine; the *shape* depends on the host's core count —
// this container exposes runtime.NumCPU() cores).
func BenchmarkE4_WithLoopScaling(b *testing.B) {
	const m, n, p = 64, 64, 64
	mat := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(1))
	for k := range mat.Floats() {
		mat.Floats()[k] = r.Float64()
	}
	body := func(idx []int) (any, error) {
		i, j := idx[0], idx[1]
		acc := 0.0
		base := (i*n + j) * p
		for k := 0; k < p; k++ {
			acc += mat.Floats()[base+k]
		}
		return acc / p, nil
	}
	for _, threads := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var pool *par.Pool
			if threads > 1 {
				pool = par.NewPool(threads)
				defer pool.Shutdown()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matrix.GenArray(matrix.Float,
					[]int{0, 0}, []int{m, n}, []int{m, n}, body, pool); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.NumCPU()), "host-cores")
		})
	}
}

// E5 — Fig 4/Fig 5: matrixMap of connected-component labelling over
// the time dimension versus the semantically equivalent explicit loop.
func BenchmarkE5_MatrixMapConnComp(b *testing.B) {
	ssh, _ := eddy.Synthesize(eddy.SynthOptions{Lat: 32, Lon: 32, Time: 16,
		NumEddies: 4, NoiseAmp: 0.05, SwellAmp: 0.08, Seed: 2})
	label := func(sub *matrix.Matrix) (*matrix.Matrix, error) {
		bin, err := matrix.Broadcast(matrix.OpLt, sub, -0.2, true)
		if err != nil {
			return nil, err
		}
		return eddy.ConnComp(bin)
	}
	b.Run("matrixMap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.MatrixMap(ssh, []int{0, 1}, matrix.Int, label, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("explicit-loop", func(b *testing.B) {
		tn := ssh.Shape()[2]
		for i := 0; i < b.N; i++ {
			out := matrix.New(matrix.Int, ssh.Shape()...)
			for t := 0; t < tn; t++ {
				subAny, err := ssh.Index(matrix.All(), matrix.All(), matrix.Scalar(t))
				if err != nil {
					b.Fatal(err)
				}
				res, err := label(subAny.(*matrix.Matrix))
				if err != nil {
					b.Fatal(err)
				}
				if err := out.SetIndex(res, matrix.All(), matrix.All(), matrix.Scalar(t)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// E6 — Fig 8: the full trough-scoring pipeline, both through the
// translator+interpreter and as the native reference.
func BenchmarkE6_EddyScoring(b *testing.B) {
	ssh, _ := eddy.Synthesize(eddy.SynthOptions{Lat: 16, Lon: 16, Time: 48,
		NumEddies: 3, NoiseAmp: 0.05, SwellAmp: 0.08, Seed: 3})
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			files := map[string]*matrix.Matrix{"ssh.data": ssh}
			if _, res, err := core.Run("fig8.xc", fig8Src, core.Config{},
				interp.Options{Files: files}); err != nil {
				b.Fatalf("%v\n%s", err, res.Diags.String())
			}
		}
	})
	b.Run("go-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eddy.ScoreField(ssh, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const fig8Src = `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}
Matrix float <1> computeArea(Matrix float <1> aoi) {
	float y1 = aoi[0];
	float y2 = aoi[end];
	int x1 = 0;
	int x2 = dimSize(aoi, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - aoi[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}
Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}
int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

// E7 — §VI: the modular determinism analysis and LALR(1) table
// construction for the full composed language (the cost a programmer
// pays to generate their customized translator).
func BenchmarkE7_ComposeAnalysis(b *testing.B) {
	b.Run("isComposable-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.MatrixSpec())
			if !r.Passed {
				b.Fatal("matrix extension must pass")
			}
		}
	})
	b.Run("compose-full-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := grammar.New(parser.StartSymbol, parser.HostSpec(),
				parser.MatrixSpec(), parser.TransformSpec(), parser.RcSpec())
			if err != nil {
				b.Fatal(err)
			}
			t, err := grammar.BuildTable(g)
			if err != nil || len(t.Conflicts) != 0 {
				b.Fatalf("table: %v, %d conflicts", err, len(t.Conflicts))
			}
		}
	})
	b.Run("mwda-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			info := sem.NewInfo()
			r := attr.CheckWellDefined(sem.HostAG(info, nil), sem.MatrixAG(info))
			if !r.Passed {
				b.Fatal("matrix semantics must pass")
			}
		}
	})
}

// E8 — §III-C: the enhanced fork-join model (spawn-once spin pool)
// versus naive thread spawning per parallel region, on small-grain
// with-loop-sized work where spawn overhead dominates.
func BenchmarkE8_ForkJoinVsNaive(b *testing.B) {
	const n = 256
	work := func(i int) {
		x := float64(i)
		for k := 0; k < 50; k++ {
			x = x*1.000001 + 0.5
		}
		_ = x
	}
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pool-t%d", threads), func(b *testing.B) {
			pool := par.NewPool(threads)
			defer pool.Shutdown()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(0, n, work)
			}
		})
		b.Run(fmt.Sprintf("naive-t%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.NaiveSpawn(threads, 0, n, work)
			}
		})
	}
}

// E9 — §III-B/C: allocator scalability — one global-lock heap versus
// sharded per-thread arenas under concurrent allocation, the
// contention phenomenon of the paper's references [15][16].
func BenchmarkE9_AllocatorContention(b *testing.B) {
	const goroutines = 8
	const opsPer = 200
	run := func(b *testing.B, alloc rc.Allocator) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					ids := make([]int, 0, 8)
					r := rand.New(rand.NewSource(seed))
					for op := 0; op < opsPer; op++ {
						if len(ids) > 0 && r.Intn(2) == 0 {
							alloc.Free(ids[len(ids)-1])
							ids = ids[:len(ids)-1]
						} else {
							ids = append(ids, alloc.Allocate(64))
						}
					}
					for _, id := range ids {
						alloc.Free(id)
					}
				}(int64(g))
			}
			wg.Wait()
		}
	}
	b.Run("global-lock", func(b *testing.B) { run(b, rc.NewGlobalLock(200)) })
	b.Run("sharded-arena", func(b *testing.B) { run(b, rc.NewArena(goroutines, 200)) })
}

// E10 — §III-A.4 ablation: the two high-level optimizations the
// extension applies across construct boundaries (which "cannot be
// applied across separate libraries").
func BenchmarkE10_FusionAblation(b *testing.B) {
	const m, n, p = 48, 48, 32
	mat := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(4))
	for k := range mat.Floats() {
		mat.Floats()[k] = r.Float64()
	}
	// slice elimination: fold reads elements directly...
	direct := func(idx []int) (any, error) {
		i, j := idx[0], idx[1]
		base := (i*n + j) * p
		acc := 0.0
		for k := 0; k < p; k++ {
			acc += mat.Floats()[base+k]
		}
		return acc / p, nil
	}
	// ...versus iterating over a copied slice of mat (the library way).
	viaSlice := func(idx []int) (any, error) {
		subAny, err := mat.Index(matrix.Scalar(idx[0]), matrix.Scalar(idx[1]), matrix.All())
		if err != nil {
			return nil, err
		}
		sub := subAny.(*matrix.Matrix)
		acc := 0.0
		for k := 0; k < p; k++ {
			acc += sub.Floats()[k]
		}
		return acc / p, nil
	}
	b.Run("slice-eliminated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.GenArray(matrix.Float, []int{0, 0}, []int{m, n},
				[]int{m, n}, direct, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("copied-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.GenArray(matrix.Float, []int{0, 0}, []int{m, n},
				[]int{m, n}, viaSlice, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// fusion: move the with-loop result into its destination...
	b.Run("fused-move", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := matrix.GenArray(matrix.Float, []int{0, 0}, []int{m, n},
				[]int{m, n}, direct, nil)
			if err != nil {
				b.Fatal(err)
			}
			_ = out // the assignment is a pointer move
		}
	})
	// ...versus the library's extra copy into the destination.
	b.Run("unfused-copy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := matrix.GenArray(matrix.Float, []int{0, 0}, []int{m, n},
				[]int{m, n}, direct, nil)
			if err != nil {
				b.Fatal(err)
			}
			_ = out.Copy() // the extraneous copy of §III-A.4
		}
	})
}

// Front-end throughput: scanning+parsing+checking the Fig 8 program
// through the composed extensible pipeline.
func BenchmarkFrontEnd(b *testing.B) {
	b.Run("parse+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.Check("fig8.xc", fig8Src, core.Config{})
			if res.Diags.HasErrors() {
				b.Fatal(res.Diags.String())
			}
		}
	})
}

// ---- kernel benchmarks (PR 5) ----
//
// BenchmarkKernel* measure the specialized arithmetic kernels of
// internal/matrix/kernels.go against the retained boxed reference path
// (the pre-PR implementation, kept as *Ref). BENCH_kernels.json records
// the committed before/after baseline. Run with:
//
//	go test -bench=Kernel -benchmem

func kernelBenchMat(elem matrix.Elem, n int) *matrix.Matrix {
	m := matrix.New(elem, n)
	switch elem {
	case matrix.Float:
		fl := m.Floats()
		for k := range fl {
			fl[k] = float64(k%97) + 0.5
		}
	case matrix.Int:
		is := m.Ints()
		for k := range is {
			is[k] = int64(k%97) + 1
		}
	}
	return m
}

// BenchmarkKernelElementwise: kernel vs boxed reference across sizes
// and element types (satisfies the BenchmarkElementwise axis of the
// bench plan; the Kernel prefix keeps one CI smoke regex).
func BenchmarkKernelElementwise(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 16, 1 << 20} {
		for _, elem := range []matrix.Elem{matrix.Float, matrix.Int} {
			x := kernelBenchMat(elem, size)
			y := kernelBenchMat(elem, size)
			b.Run(fmt.Sprintf("kernel/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.Elementwise(matrix.OpAdd, x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("generic/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.ElementwiseRef(matrix.OpAdd, x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelBroadcast: matrix-scalar kernels vs boxed reference.
func BenchmarkKernelBroadcast(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 20} {
		for _, elem := range []matrix.Elem{matrix.Float, matrix.Int} {
			x := kernelBenchMat(elem, size)
			var s any = 1.5
			if elem == matrix.Int {
				s = int64(3)
			}
			b.Run(fmt.Sprintf("kernel/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.Broadcast(matrix.OpMul, x, s, true); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("generic/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.BroadcastRef(matrix.OpMul, x, s, true); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelMatMul: blocked i-k-j kernel vs naive i-j-k reference.
func BenchmarkKernelMatMul(b *testing.B) {
	for _, size := range []int{64, 256, 512} {
		for _, elem := range []matrix.Elem{matrix.Float, matrix.Int} {
			x := kernelBenchMat(elem, size*size)
			y := kernelBenchMat(elem, size*size)
			xm := matrix.New(elem, size, size)
			ym := matrix.New(elem, size, size)
			switch elem {
			case matrix.Float:
				copy(xm.Floats(), x.Floats())
				copy(ym.Floats(), y.Floats())
			case matrix.Int:
				copy(xm.Ints(), x.Ints())
				copy(ym.Ints(), y.Ints())
			}
			b.Run(fmt.Sprintf("kernel/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.MatMul(xm, ym); err != nil {
						b.Fatal(err)
					}
				}
			})
			if size > 256 && elem == matrix.Int {
				continue // the boxed reference at 512 int adds nothing new and minutes of runtime
			}
			b.Run(fmt.Sprintf("generic/%s/%d", elem, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := matrix.MatMulRef(xm, ym); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelChained: the buffer-reuse case — (a+b).*c allocates
// two outputs; recycling the spent a+b temporary lets the free list
// feed later outputs, cutting allocs/op versus the reference chain.
func BenchmarkKernelChained(b *testing.B) {
	x := kernelBenchMat(matrix.Float, 1<<20)
	y := kernelBenchMat(matrix.Float, 1<<20)
	z := kernelBenchMat(matrix.Float, 1<<20)
	b.Run("kernel", func(b *testing.B) {
		matrix.DrainFreeLists()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := matrix.Elementwise(matrix.OpAdd, x, y)
			if err != nil {
				b.Fatal(err)
			}
			out, err := matrix.Elementwise(matrix.OpMul, s, z)
			if err != nil {
				b.Fatal(err)
			}
			s.Recycle()
			out.Recycle()
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := matrix.ElementwiseRef(matrix.OpAdd, x, y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := matrix.ElementwiseRef(matrix.OpMul, s, z); err != nil {
				b.Fatal(err)
			}
		}
	})
}
