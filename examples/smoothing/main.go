// Spatial smoothing (denoising) of SSH fields — the preprocessing the
// paper's §IV motivates ("susceptible to noise in the sea surface
// height data collected from satellites"). A five-point stencil is
// written as a with-loop over the interior of each lat x lon slice and
// mapped over the time dimension with matrixMap; whole-dimension
// indexed stores (§III-A.3(c)) restore the borders.
//
//	go run ./examples/smoothing
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/eddy"
	"repro/internal/interp"
	"repro/internal/matrix"
)

const smoothProgram = `
Matrix float <2> smooth(Matrix float <2> s) {
	int rows = dimSize(s, 0);
	int cols = dimSize(s, 1);
	Matrix float <2> sm;
	// genarray over the interior; the shape is a superset of the
	// generator (checked at runtime), borders default to 0...
	sm = with ([1, 1] <= [i, j] < [rows - 1, cols - 1])
		genarray([rows, cols],
			(s[i, j] * 4.0 + s[i - 1, j] + s[i + 1, j] + s[i, j - 1] + s[i, j + 1]) / 8.0);
	// ...and are then restored with whole-dimension indexed stores.
	sm[0, :] = s[0, :];
	sm[rows - 1, :] = s[rows - 1, :];
	sm[:, 0] = s[:, 0];
	sm[:, cols - 1] = s[:, cols - 1];
	return sm;
}

int main() {
	Matrix float <3> ssh = readMatrix("ssh.data");
	Matrix float <3> smoothed = matrixMap(smooth, ssh, [0, 1]);
	writeMatrix("smoothed.data", smoothed);
	return 0;
}
`

func main() {
	opts := eddy.SynthOptions{Lat: 28, Lon: 36, Time: 24, NumEddies: 4,
		NoiseAmp: 0.15, SwellAmp: 0.05, Seed: 3}
	noisy, _ := eddy.Synthesize(opts)
	clean, _ := eddy.Synthesize(eddy.SynthOptions{Lat: opts.Lat, Lon: opts.Lon,
		Time: opts.Time, NumEddies: opts.NumEddies, NoiseAmp: 0,
		SwellAmp: opts.SwellAmp, Seed: opts.Seed})

	files := map[string]*matrix.Matrix{"ssh.data": noisy}
	_, res, err := core.Run("smoothing.xc", smoothProgram, core.Config{},
		interp.Options{Files: files, Threads: 4})
	if err != nil {
		log.Fatalf("run failed: %v\n%s", err, res.Diags.String())
	}
	smoothed := files["smoothed.data"]

	// Validate against a direct Go stencil.
	ref := goSmooth(noisy)
	if !matrix.AlmostEqual(smoothed, ref, 1e-9) {
		log.Fatal("extended-C smoothing differs from the Go stencil")
	}
	fmt.Println("extended-C stencil matches the Go reference pointwise")

	// Borders must be preserved exactly.
	b0, _ := noisy.At(0, 5, 3)
	b1, _ := smoothed.At(0, 5, 3)
	if b0 != b1 {
		log.Fatal("border was not preserved")
	}

	// Smoothing should bring the field closer to the noise-free truth.
	before := rmse(noisy, clean)
	after := rmse(smoothed, clean)
	fmt.Printf("RMSE vs noise-free field: before %.4f, after %.4f\n", before, after)
	if after < before {
		fmt.Println("denoising reduced the error, as intended")
	} else {
		fmt.Println("warning: smoothing did not reduce the error for this seed")
	}
}

func goSmooth(ssh *matrix.Matrix) *matrix.Matrix {
	sh := ssh.Shape()
	rows, cols, tn := sh[0], sh[1], sh[2]
	out := matrix.New(matrix.Float, rows, cols, tn)
	at := func(r, c, t int) float64 {
		v, _ := ssh.At(r, c, t)
		return v.(float64)
	}
	for t := 0; t < tn; t++ {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				var v float64
				if r == 0 || r == rows-1 || c == 0 || c == cols-1 {
					v = at(r, c, t)
				} else {
					v = (at(r, c, t)*4 + at(r-1, c, t) + at(r+1, c, t) +
						at(r, c-1, t) + at(r, c+1, t)) / 8
				}
				// mirror the float32 rounding of the runtime? the
				// interpreter computes in float64, so compare directly
				_ = v
				if err := out.SetAt(v, r, c, t); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

func rmse(a, b *matrix.Matrix) float64 {
	fa, fb := a.Floats(), b.Floats()
	acc := 0.0
	for k := range fa {
		d := fa[k] - fb[k]
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(fa)))
}
