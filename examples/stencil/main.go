// Heat diffusion driven through the bytecode engine: the five-point
// stencil body is a pure index expression, so vet proves it and the VM
// lowers both with-loops to the flat engine (no per-element closure
// calls). The example cross-checks the extended-C program against a
// direct Go stencil and reports the with-loop compilation metrics.
//
//	go run ./examples/stencil
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/driver"
)

const n = 64

const heatProgram = `
int main() {
	int n = 64;
	float alpha = 0.1;
	Matrix float <2> u;
	u = with ([28, 28] <= [i, j] < [36, 36]) genarray([n, n], 100.0);
	int step = 0;
	while (step < 50) {
		Matrix float <2> next;
		next = with ([1, 1] <= [i, j] < [n - 1, n - 1])
			genarray([n, n],
				u[i, j] + alpha * (u[i - 1, j] + u[i + 1, j]
					+ u[i, j - 1] + u[i, j + 1] - 4.0 * u[i, j]));
		u = next;
		step = step + 1;
	}
	float total = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0.0, u[i, j]);
	print(total);
	print(u[32, 32]);
	float hottest = with ([0, 0] <= [i, j] < [n, n]) fold(max, 0.0, u[i, j]);
	print(hottest);
	return 0;
}
`

// goHeat replays the same diffusion in plain Go.
func goHeat() (total, center, hottest float64) {
	u := make([][]float64, n)
	for i := range u {
		u[i] = make([]float64, n)
	}
	for i := 28; i < 36; i++ {
		for j := 28; j < 36; j++ {
			u[i][j] = 100
		}
	}
	const alpha = 0.1
	for step := 0; step < 50; step++ {
		next := make([][]float64, n)
		for i := range next {
			next[i] = make([]float64, n)
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				next[i][j] = u[i][j] + alpha*(u[i-1][j]+u[i+1][j]+u[i][j-1]+u[i][j+1]-4*u[i][j])
			}
		}
		u = next
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += u[i][j]
			if u[i][j] > hottest {
				hottest = u[i][j]
			}
		}
	}
	return total, u[32][32], hottest
}

func main() {
	exts, err := driver.ParseExtensions("all")
	if err != nil {
		log.Fatal(err)
	}
	d := driver.New()
	var out bytes.Buffer
	res, err := d.Run(context.Background(), driver.RunRequest{
		Name: "heat.xc", Source: heatProgram, Exts: exts,
		Threads: 4, Engine: "vm", Stdout: &out,
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	if res.Engine != "vm" {
		log.Fatalf("expected the bytecode engine, ran on %q", res.Engine)
	}
	fmt.Print(out.String())

	var total, center, hottest float64
	if _, err := fmt.Sscan(out.String(), &total, &center, &hottest); err != nil {
		log.Fatalf("parse program output: %v", err)
	}
	wTotal, wCenter, wHottest := goHeat()
	for _, c := range []struct {
		name      string
		got, want float64
	}{{"total heat", total, wTotal}, {"center", center, wCenter}, {"hottest", hottest, wHottest}} {
		if math.Abs(c.got-c.want) > 1e-6*math.Max(1, math.Abs(c.want)) {
			log.Fatalf("%s: extended-C %v, Go reference %v", c.name, c.got, c.want)
		}
	}
	fmt.Println("extended-C diffusion matches the Go reference")

	m := d.MetricsSnapshot()
	fmt.Printf("with-loops compiled flat: %d sites, %d flat executions\n",
		m.VMWithSites, m.VMWithFlatRuns)
	if m.VMWithSites == 0 || m.VMWithFlatRuns == 0 {
		log.Fatal("stencil did not run on the flat with-loop engine")
	}
}
