// The cilk determinacy-race detector in action: a racy program and
// its race-free fix, side by side. cmvet's interprocedural effect
// analysis flags every access in the racy version that conflicts with
// an outstanding spawn (with both spans — the access and the spawn);
// the fixed version routes all communication through distinct spawn
// targets joined by sync, vets clean, and runs deterministically.
//
//	go run ./examples/cilkrace
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/driver"
	"repro/internal/parser"
)

// racy shares one global between two spawned writers and the
// continuation's read: which value print observes (and which update
// wins) depends on scheduling. It is never executed here — the point
// is that vet rejects the pattern statically.
const racy = `
int total = 0;

void add(int n) { total = total + n; return; }

int main() {
	spawn add(1);
	spawn add(2);
	print(total);
	sync;
	return 0;
}
`

// fixed gives each spawned task its own target and reads the targets
// only after sync: same parallelism, deterministic by construction.
const fixed = `
int work(int n) { return n * 10; }

int main() {
	int a = 0;
	int b = 0;
	spawn a = work(1);
	spawn b = work(2);
	sync;
	print(a + b);
	return 0;
}
`

func main() {
	d := driver.New()
	exts := parser.AllExtensions()

	fmt.Println("--- racy version: cmvet findings ---")
	res := d.Vet(driver.VetRequest{Name: "racy.xc", Source: racy, Exts: exts})
	for _, f := range res.Findings {
		fmt.Println(f.String())
	}
	if len(res.Findings) == 0 {
		log.Fatal("expected determinacy-race findings on the racy version")
	}

	fmt.Println("\n--- fixed version: cmvet findings ---")
	res = d.Vet(driver.VetRequest{Name: "fixed.xc", Source: fixed, Exts: exts})
	if len(res.Findings) != 0 {
		for _, f := range res.Findings {
			fmt.Println(f.String())
		}
		log.Fatal("expected the fixed version to vet clean")
	}
	fmt.Println("(clean)")

	var out bytes.Buffer
	run, err := d.Run(context.Background(), driver.RunRequest{
		Name: "fixed.xc", Source: fixed, Exts: exts, Stdout: &out,
	})
	if err != nil || !run.OK {
		log.Fatalf("run failed: %v %v", err, run.Diagnostics)
	}
	fmt.Printf("\n--- fixed version output (engine=%s) ---\n%s", run.Engine, out.String())
}
