// User-directed program transformation (§V): show how the same
// temporal-mean with-loops translate under different programmer-
// specified schedules — the untransformed Fig 3 expansion, the Fig 10
// split, the Fig 11 vectorized+parallelized form, tiling (the derived
// transformation), and the automatic pthread fork-join lifting of
// §III-C.
//
//	go run ./examples/transforms
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cgen"
	"repro/internal/core"
)

const base = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p)%s;
	writeMatrix("means.data", means);
	return 0;
}
`

func main() {
	show("Fig 3: plain expansion (no transform clauses, -par none)",
		"", cgen.Options{Par: cgen.ParNone, Optimize: true})
	show("Fig 10: transform split j by 4, jin, jout",
		"\n\t\ttransform split j by 4, jin, jout", cgen.Options{Par: cgen.ParNone, Optimize: true})
	show("Fig 11: split + vectorize jin + parallelize i (-par omp)",
		"\n\t\ttransform split j by 4, jin, jout. vectorize jin. parallelize i",
		cgen.Options{Par: cgen.ParOMP, Optimize: true})
	show("tile i by 4, j by 4 (the derived transformation: two splits + reorder)",
		"\n\t\ttransform tile i by 4, j by 4", cgen.Options{Par: cgen.ParNone, Optimize: true})
	show("automatic parallelization (§III-C): fork-join pool lifting (-par pthread)",
		"", cgen.Options{Par: cgen.ParPthread, Optimize: true})
}

func show(title, clause string, opts cgen.Options) {
	src := fmt.Sprintf(base, clause)
	res := core.Compile("transforms.xc", src, core.Config{Codegen: &opts})
	if res.Diags.HasErrors() {
		log.Fatalf("%s:\n%s", title, res.Diags.String())
	}
	fmt.Printf("=== %s ===\n", title)
	fmt.Println(excerpt(res.C))
	fmt.Println()
}

// excerpt extracts the translated main (or lifted worker) section.
func excerpt(c string) string {
	lines := strings.Split(c, "\n")
	var keep []string
	on := false
	depth := 0
	for _, l := range lines {
		if strings.Contains(l, "lifted for the fork-join pool") ||
			strings.Contains(l, "static long u_main") {
			on = true
		}
		if !on {
			continue
		}
		keep = append(keep, l)
		depth += strings.Count(l, "{") - strings.Count(l, "}")
		if on && depth == 0 && strings.Contains(l, "}") && len(keep) > 3 {
			// stop at the end of the first complete block unless the
			// worker comes first (then keep going to include u_main)
			if strings.Contains(keep[0], "u_main") {
				break
			}
			if strings.HasPrefix(l, "}") && len(keep) > 20 {
				break
			}
		}
		if len(keep) > 90 {
			keep = append(keep, "    ... (truncated)")
			break
		}
	}
	return strings.Join(keep, "\n")
}
