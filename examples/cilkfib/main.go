// Cilk-style task parallelism as a pluggable extension — the §VIII
// future-work item, implemented. The classic spawned fib plus task-
// parallel matrix work run through the interpreter, and the generated
// C (pthread task runtime) is shown.
//
//	go run ./examples/cilkfib
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/interp"
)

const program = `
int fib(int n) {
	if (n < 2) return n;
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);   // run asynchronously
	b = fib(n - 2);         // ... while this runs here
	sync;                   // join before combining
	return a + b;
}

Matrix float <1> scale(Matrix float <1> v, float f) {
	int n = dimSize(v, 0);
	return with ([0] <= [i] < [n]) genarray([n], v[i] * f);
}

int main() {
	print(fib(15));

	// task-parallel matrix work: two independent scalings
	Matrix float <1> base = [1 :: 8] * 1.0;
	Matrix float <1> doubled;
	Matrix float <1> tripled;
	spawn doubled = scale(base, 2.0);
	spawn tripled = scale(base, 3.0);
	sync;
	print(doubled[7]);
	print(tripled[7]);
	return 0;
}
`

func main() {
	code, res, err := core.Run("cilkfib.xc", program, core.Config{}, interp.Options{})
	if err != nil {
		log.Fatalf("run failed: %v\n%s", err, res.Diags.String())
	}
	fmt.Printf("(exit code %d)\n\n", code)

	opts := cgen.Options{Par: cgen.ParNone, Optimize: true}
	cres := core.Compile("cilkfib.xc", program, core.Config{Codegen: &opts})
	if cres.Diags.HasErrors() {
		log.Fatal(cres.Diags.String())
	}
	fmt.Println("--- generated C (excerpt: the lifted spawn site for fib) ---")
	lines := strings.Split(cres.C, "\n")
	start := -1
	for i, l := range lines {
		if strings.Contains(l, "spawn site 1") {
			start = i
			break
		}
	}
	if start >= 0 {
		end := start + 28
		if end > len(lines) {
			end = len(lines)
		}
		fmt.Println(strings.Join(lines[start:end], "\n"))
	}
}
