// Transpose through the with-loop path: the m[j, i] genarray body is
// proven flat by vet and pattern-matched by the VM's flat engine onto
// the cache-blocked transpose kernel — the kernel_transpose_total
// metric confirms no per-element evaluation happened. A second
// transpose round-trips the matrix exactly.
//
//	go run ./examples/transpose
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/driver"
)

const transposeProgram = `
int main() {
	int rows = 300;
	int cols = 217;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [rows, cols]) genarray([rows, cols], i * 1000 + j);
	Matrix int <2> t;
	t = with ([0, 0] <= [i, j] < [cols, rows]) genarray([cols, rows], m[j, i]);
	Matrix int <2> back;
	back = with ([0, 0] <= [i, j] < [rows, cols]) genarray([rows, cols], t[j, i]);
	int diff = with ([0, 0] <= [i, j] < [rows, cols]) fold(+, 0, back[i, j] - m[i, j]);
	print(diff);
	print(t[216, 299]);
	print(dimSize(t, 0));
	print(dimSize(t, 1));
	return 0;
}
`

func main() {
	exts, err := driver.ParseExtensions("all")
	if err != nil {
		log.Fatal(err)
	}
	d := driver.New()
	var out bytes.Buffer
	res, err := d.Run(context.Background(), driver.RunRequest{
		Name: "transpose.xc", Source: transposeProgram, Exts: exts,
		Threads: 4, Engine: "vm", Stdout: &out,
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	if res.Engine != "vm" {
		log.Fatalf("expected the bytecode engine, ran on %q", res.Engine)
	}
	fmt.Print(out.String())

	var diff, corner, d0, d1 int
	if _, err := fmt.Sscan(out.String(), &diff, &corner, &d0, &d1); err != nil {
		log.Fatalf("parse program output: %v", err)
	}
	if diff != 0 {
		log.Fatalf("double transpose did not round-trip: residual %d", diff)
	}
	if corner != 299*1000+216 || d0 != 217 || d1 != 300 {
		log.Fatalf("transpose shape or corner wrong: t[216,299]=%d dims %dx%d", corner, d0, d1)
	}
	fmt.Println("double transpose round-trips exactly")

	m := d.MetricsSnapshot()
	fmt.Printf("with-loops compiled flat: %d sites; blocked transpose kernel ran %d times\n",
		m.VMWithSites, m.KernelTranspose)
	if m.KernelTranspose < 2 {
		log.Fatalf("expected both transposes on the blocked kernel, got %d", m.KernelTranspose)
	}
}
