// Ocean-eddy scoring (§IV, Fig 8): run the paper's trough-scoring
// application end to end on synthetic sea-surface-height data.
//
//	go run ./examples/eddyscore
//
// The extended-C program (tuples, ranges with ::, end-indexing,
// with-loops, matrixMap) is executed by the parallel interpreter;
// the result is validated pointwise against the native Go reference,
// and the top-ranked cells are compared with the synthetic ground
// truth to show that trough areas separate real eddies from noise —
// the premise of Fig 7.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eddy"
	"repro/internal/interp"
	"repro/internal/matrix"
)

const scoreProgram = `
// Fig 8: score every point of every time series by trough area.
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])   // walk downwards
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])    // walk upwards
		i = i + 1;
	return (ts[beginning :: i], beginning, i); // the trough, as a tuple
}

Matrix float <1> computeArea(Matrix float <1> aoi) {
	float y1 = aoi[0];
	float y2 = aoi[end];
	int x1 = 0;
	int x2 = dimSize(aoi, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);    // slope
	float b = y1 - m * x1;                     // y intercept
	Matrix float <1> Line = [x1 :: x2] * m + b; // the peak-to-peak line
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - aoi[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] < ts[i + 1])     // trimming
		i = i + 1;
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}

int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);     // over the time dimension
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

func main() {
	opts := eddy.SynthOptions{Lat: 32, Lon: 40, Time: 48, NumEddies: 5,
		NoiseAmp: 0.05, SwellAmp: 0.08, Seed: 7}
	ssh, truth := eddy.Synthesize(opts)
	fmt.Printf("synthetic SSH %dx%dx%d with %d ground-truth eddies\n",
		opts.Lat, opts.Lon, opts.Time, len(truth))

	files := map[string]*matrix.Matrix{"ssh.data": ssh}
	_, res, err := core.Run("eddyscore.xc", scoreProgram, core.Config{},
		interp.Options{Files: files, Threads: 4})
	if err != nil {
		log.Fatalf("run failed: %v\n%s", err, res.Diags.String())
	}
	scores := files["temporalScores.data"]

	ref, err := eddy.ScoreField(ssh, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !matrix.AlmostEqual(scores, ref, 1e-6) {
		log.Fatal("interpreter scores differ from the Go reference")
	}
	fmt.Println("extended-C scores match the native Go reference pointwise")

	fmt.Println("\ntop-ranked cells (area score) vs ground truth:")
	for _, c := range eddy.TopScores(scores, 8) {
		fmt.Printf("  cell (%2d,%2d)  score %6.2f\n", c.Lat, c.Lon, c.Score)
	}
	fmt.Println("\n(high-area cells sit under the synthetic eddy tracks; shallow")
	fmt.Println(" noise troughs score low — the separation Fig 7 describes)")
}
