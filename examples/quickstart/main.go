// Quickstart: compile and run the paper's recurring example — the
// temporal-mean program of Fig 1 — with the extensible translator.
//
//	go run ./examples/quickstart
//
// It parses the extended-C source with the composed host+extension
// grammars, type-checks it with the composed attribute-grammar
// semantics, executes it on the parallel interpreter, verifies the
// result against a plain Go computation, and prints the generated
// parallel C (the Fig 3 expansion).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/matrix"
)

const program = `
// Fig 1: temporal mean of sea surface heights (extended CMINUS).
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`

func main() {
	// Synthesize a small SSH cube.
	const m, n, p = 8, 10, 12
	ssh := matrix.New(matrix.Float, m, n, p)
	r := rand.New(rand.NewSource(42))
	for k := range ssh.Floats() {
		ssh.Floats()[k] = r.Float64() * 3
	}
	files := map[string]*matrix.Matrix{"ssh.data": ssh}

	// Run through the translator + parallel interpreter.
	code, res, err := core.Run("quickstart.xc", program, core.Config{},
		interp.Options{Files: files, Threads: 4})
	if err != nil {
		log.Fatalf("run failed: %v\n%s", err, res.Diags.String())
	}
	fmt.Printf("program exited with code %d\n", code)

	// Verify against a direct Go computation (the Fig 3 loops).
	means := files["means.data"]
	want := matrix.New(matrix.Float, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < p; k++ {
				acc += ssh.Floats()[(i*n+j)*p+k]
			}
			want.Floats()[i*n+j] = acc / p
		}
	}
	if matrix.AlmostEqual(means, want, 1e-9) {
		fmt.Println("temporal means match the reference computation")
	} else {
		log.Fatal("MISMATCH against the reference computation")
	}
	v, _ := means.At(0, 0)
	fmt.Printf("means[0,0] = %.4f\n", v)

	// Show the translation: Fig 1's with-loops expand to the Fig 3
	// loop nest in the generated C.
	cres := core.Compile("quickstart.xc", program, core.Config{})
	if cres.Diags.HasErrors() {
		log.Fatal(cres.Diags.String())
	}
	fmt.Println("\n--- generated C (excerpt: the expanded with-loops) ---")
	printExcerpt(cres.C)
}

// printExcerpt shows the translated main function only.
func printExcerpt(c string) {
	lines := strings.Split(c, "\n")
	start := -1
	for i, l := range lines {
		if strings.Contains(l, "static long u_main") || strings.Contains(l, "_wlwork") {
			start = i
			break
		}
	}
	if start < 0 {
		start = 0
	}
	end := start + 60
	if end > len(lines) {
		end = len(lines)
	}
	fmt.Println(strings.Join(lines[start:end], "\n"))
}
