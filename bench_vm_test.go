// Dual-engine execution benchmarks (E15): the same checked program
// run through the tree-walking interpreter and the register bytecode
// VM. Parse+check (and for the VM, bytecode compilation) happen once
// outside the timed loop — exactly what the driver's caches give a
// warm server — so the numbers isolate pure execution dispatch.
//
// Run with: go test -bench 'ScalarLoop|Fib|IndexSum' -benchmem
// Results are committed in BENCH_vm.json.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/vm"
)

// scalarLoopSrc is the VM's headline case: a tight counted loop of
// fused integer opcodes (compare-and-branch, add-immediate) that the
// tree walker pays per-node evaluation and boxing for.
const scalarLoopSrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 200000; i++) {
		s = s + i * 3 - 1;
	}
	return s % 251;
}
`

// fibSrc stresses the call path: frames, argument binding, returns.
const fibSrc = `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(21) % 251; }
`

// indexSumSrc stresses the fused rank-1 indexed load/store opcodes.
const indexSumSrc = `
int main() {
	Matrix float <1> a = init(Matrix float <1>, 4096);
	for (int i = 0; i < 4096; i++) {
		a[i] = (float)(i % 97);
	}
	float s = 0.0;
	for (int r = 0; r < 16; r++) {
		for (int i = 0; i < 4096; i++) {
			s = s + a[i];
		}
	}
	return (int)(s / 4096.0);
}
`

type benchProg struct {
	prog *ast.Program
	info *sem.Info
	vmp  *vm.Program
}

func compileBench(b *testing.B, src string) benchProg {
	b.Helper()
	var d source.Diagnostics
	p := parser.ParseFile("bench.xc", src, parser.AllExtensions(), &d)
	if p == nil {
		b.Fatalf("parse failed:\n%s", d.String())
	}
	info := sem.Check(p, &d)
	if d.HasErrors() {
		b.Fatalf("check failed:\n%s", d.String())
	}
	vmp, err := vm.Compile(p, info)
	if err != nil {
		b.Fatalf("vm.Compile: %v", err)
	}
	return benchProg{prog: p, info: info, vmp: vmp}
}

func benchEngines(b *testing.B, src string) {
	bp := compileBench(b, src)
	opts := interp.Options{Threads: 1, Stdout: io.Discard}
	var treeCode, vmCode int
	b.Run("Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := interp.New(bp.prog, bp.info, opts)
			code, err := it.Run()
			it.Close()
			if err != nil {
				b.Fatal(err)
			}
			treeCode = code
		}
	})
	b.Run("VM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := interp.New(bp.prog, bp.info, opts)
			code, err := vm.NewMachine(bp.vmp, it).Run()
			it.Close()
			if err != nil {
				b.Fatal(err)
			}
			vmCode = code
		}
	})
	if treeCode != 0 && vmCode != 0 && treeCode != vmCode {
		b.Fatalf("engines disagree: tree=%d vm=%d", treeCode, vmCode)
	}
}

func BenchmarkScalarLoop(b *testing.B) { benchEngines(b, scalarLoopSrc) }
func BenchmarkFib(b *testing.B)        { benchEngines(b, fibSrc) }
func BenchmarkIndexSum(b *testing.B)   { benchEngines(b, indexSumSrc) }
