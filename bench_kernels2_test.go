// Kernel-breadth benchmarks (PR 10): the blocked transpose, 2-D
// convolution, axis reduction and recursive-matmul kernels against the
// retained boxed *Ref oracles, plus the compiled with-loop ablation —
// the same proven genarray/fold program run through the tree walker,
// the VM on closure bodies (no facts), and the VM on the flat engine
// (facts-driven). BENCH_kernels2.json records the committed numbers.
//
// Run with: go test -bench=Kernel -benchmem
package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/vm"
)

func kb2Mat(elem matrix.Elem, rows, cols int) *matrix.Matrix {
	m := matrix.New(elem, rows, cols)
	switch elem {
	case matrix.Float:
		fl := m.Floats()
		for k := range fl {
			fl[k] = float64(k%97) + 0.5
		}
	case matrix.Int:
		is := m.Ints()
		for k := range is {
			is[k] = int64(k%97) + 1
		}
	}
	return m
}

// kb2Execs: the serial path and a 4-worker pool. The CI box is a
// single core, so the pool rows measure coordination overhead
// (simulated parallelism), not wall-clock scaling.
func kb2Execs() []struct {
	name string
	x    matrix.Exec
} {
	return []struct {
		name string
		x    matrix.Exec
	}{
		{"serial", matrix.Exec{}},
		{"pool4", matrix.Exec{Pool: par.NewPool(4)}},
	}
}

// BenchmarkKernelTranspose: cache-blocked tiles vs the boxed
// element-at-a-time reference. 2048x2048 float is the acceptance row.
func BenchmarkKernelTranspose(b *testing.B) {
	for _, size := range []int{512, 2048} {
		m := kb2Mat(matrix.Float, size, size)
		for _, e := range kb2Execs() {
			b.Run(fmt.Sprintf("kernel/%s/%d", e.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := matrix.TransposeExec(m, e.x)
					if err != nil {
						b.Fatal(err)
					}
					out.Recycle()
				}
			})
		}
		b.Run(fmt.Sprintf("generic/%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.TransposeRef(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelConv2D: specialized row loops vs the boxed reference.
// 1024x1024 with a 3x3 kernel is the acceptance row.
func BenchmarkKernelConv2D(b *testing.B) {
	src := kb2Mat(matrix.Float, 1024, 1024)
	kern := kb2Mat(matrix.Float, 3, 3)
	for _, e := range kb2Execs() {
		b.Run("kernel/"+e.name+"/1024x1024_3x3", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := matrix.Conv2DExec(src, kern, e.x)
				if err != nil {
					b.Fatal(err)
				}
				out.Recycle()
			}
		})
	}
	b.Run("generic/1024x1024_3x3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.Conv2DRef(src, kern); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelReduceAxis: blocked axis reduction vs the boxed
// reference, along both the outer (0) and inner (1) axis of a square.
func BenchmarkKernelReduceAxis(b *testing.B) {
	m := kb2Mat(matrix.Float, 2048, 2048)
	for _, axis := range []int{0, 1} {
		for _, e := range kb2Execs() {
			b.Run(fmt.Sprintf("kernel/%s/sum_axis%d", e.name, axis), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := matrix.ReduceAxisExec(matrix.FoldAdd, m, axis, e.x)
					if err != nil {
						b.Fatal(err)
					}
					out.Recycle()
				}
			})
		}
		b.Run(fmt.Sprintf("generic/sum_axis%d", axis), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.ReduceAxisRef(matrix.FoldAdd, m, axis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelRecMatMul: 640x640 crosses mmRecCutoff=512, so the
// kernel row runs the blocked-recursive split; the generic row is the
// boxed naive triple loop.
func BenchmarkKernelRecMatMul(b *testing.B) {
	const size = 640
	x := kb2Mat(matrix.Float, size, size)
	y := kb2Mat(matrix.Float, size, size)
	b.Run(fmt.Sprintf("kernel/%d", size), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.MatMul(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("generic/%d", size), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.MatMulRef(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// withBenchSrc: transpose, five-point stencil and a fold, all with
// provable flat bodies. The same checked program runs on every engine
// variant; exit codes are compared to keep the ablation honest.
const withBenchSrc = `
int main() {
	int n = 256;
	Matrix float <2> u;
	u = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0 + 0.5 * i - 0.25 * j);
	Matrix float <2> t;
	t = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], u[j, i]);
	Matrix float <2> s;
	s = with ([1, 1] <= [i, j] < [n - 1, n - 1])
		genarray([n, n],
			t[i, j] + 0.25 * (t[i - 1, j] + t[i + 1, j]
				+ t[i, j - 1] + t[i, j + 1] - 4.0 * t[i, j]));
	float total = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0.0, s[i, j]);
	return (int)(total / 1000.0) % 251;
}
`

// BenchmarkKernelWithCompiled: the with-loop compilation ablation.
// tree = per-node evaluation; vm_closure = bytecode engine but boxed
// per-element body closures (compiled without facts); vm_flat = the
// facts-driven flat engine (transpose pattern-match, stencil fill,
// fold chunks). vm_flat_threads4 adds a 4-worker pool on the same
// single-core box to price the coordination overhead.
func BenchmarkKernelWithCompiled(b *testing.B) {
	bp := compileBench(b, withBenchSrc)
	// vm.Compile computes facts itself, so bp.vmp is the flat program;
	// compiling with nil facts yields the closure-body ablation arm.
	flat := bp.vmp
	if flat.WithCompiled() != 4 {
		b.Fatalf("expected all 4 with-loops compiled flat, got %d", flat.WithCompiled())
	}
	closure, err := vm.CompileWithFacts(bp.prog, bp.info, nil)
	if err != nil {
		b.Fatalf("vm.CompileWithFacts(nil): %v", err)
	}
	if closure.WithCompiled() != 0 {
		b.Fatalf("nil-facts compile still flattened %d with-loops", closure.WithCompiled())
	}
	codes := map[string]int{}
	run := func(name string, threads int, vmp *vm.Program) {
		opts := interp.Options{Threads: threads, Stdout: io.Discard}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := interp.New(bp.prog, bp.info, opts)
				var code int
				var err error
				if vmp != nil {
					code, err = vm.NewMachine(vmp, it).Run()
				} else {
					code, err = it.Run()
				}
				it.Close()
				if err != nil {
					b.Fatal(err)
				}
				codes[name] = code
			}
		})
	}
	run("tree", 1, nil)
	run("vm_closure", 1, closure)
	run("vm_flat", 1, flat)
	run("vm_flat_threads4", 4, flat)
	want, ok := codes["tree"], false
	for name, code := range codes {
		ok = true
		if code != want {
			b.Fatalf("engine %s exited %d, tree exited %d", name, code, want)
		}
	}
	if !ok {
		b.Log("no engine variant ran (benchtime 0?)")
	}
}
